(** End-to-end vendor-site pipeline (Fig. 2): schema + CCs in, database
    summary out, with per-view diagnostics for the benchmark harness. *)

open Hydra_rel
open Hydra_workload

type view_stats = {
  rel : string;
  num_subviews : int;
  num_lp_vars : int;  (** region variables after refinement (Fig. 12) *)
  num_lp_constraints : int;
  solve_seconds : float;
}

type result = {
  summary : Summary.t;
  views : view_stats list;
  group_residuals : Grouping.residual list;
      (** grouping (distinct-count) CCs that value spreading could not
          meet exactly; empty when all grouping CCs are satisfied *)
  total_seconds : float;
}

val complete_size_ccs :
  Schema.t -> Cc.t list -> (string * int) list -> Cc.t list
(** Append [|R| = n] constraints from the fallback size table (metadata
    row counts) for relations the workload never scans. *)

val regenerate :
  ?sizes:(string * int) list ->
  ?max_nodes:int ->
  ?policy:Summary.instantiation ->
  ?histograms:Correlation.column_hist list ->
  Schema.t -> Cc.t list -> result
(** Preprocess, formulate and solve every view, align-and-merge, build the
    summary. [sizes] supplies fallback relation sizes; [max_nodes] bounds
    the integer search per view; [policy] selects the instantiation rule
    (Sec. 5.2); [histograms] are optional client value distributions to
    track inside regions (the value-correlation extension).
    @raise Preprocess.Preprocess_error / Formulate.Formulation_error on
    unsatisfiable or incomplete inputs. *)

val total_lp_vars : result -> int
