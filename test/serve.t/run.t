The live telemetry endpoint: `hydra obs serve` publishes an archived
run ledger over HTTP, and `--serve` attaches the same routes to a run
as it executes. `hydra obs get` is the matching scrape client, so the
whole loop is curl-independent.

  $ cat > toy.hydra <<'SPEC'
  > table S (A int [0,100), B int [0,50));
  > table R (S_fk -> S);
  > cc |R| = 5000;
  > cc |S| = 700;
  > cc |sigma(S.A in [20,60))(S)| = 400;
  > SPEC

Archive two runs, then serve the ledger. --port 0 asks the kernel for
an ephemeral port; the resolved one is printed on startup so scripts
(like this one) can pick it up.

  $ hydra summary toy.hydra -o a.summary --obs-dir ledger > /dev/null 2>&1
  $ hydra summary toy.hydra -o b.summary --obs-dir ledger > /dev/null 2>&1
  $ hydra obs serve --obs-dir ledger --port 0 > serve.out 2>&1 &
  $ SPID=$!
  $ for i in $(seq 1 150); do grep -q listening serve.out 2>/dev/null && break; sleep 0.1; done
  $ PORT=$(sed -n 's|.*http://127\.0\.0\.1:\([0-9]*\).*|\1|p' serve.out)

A 2xx scrape prints the body and exits 0.

  $ hydra obs get --port "$PORT" /healthz
  ok
  $ hydra obs get --port "$PORT" /runs | grep -c '"id": "run-00000'
  2

Idle /metrics serves the latest archived run's metric list in
Prometheus exposition format.

  $ hydra obs get --port "$PORT" /metrics | grep -c '^hydra_pipeline_views_exact 2$'
  1
  $ hydra obs get --port "$PORT" /metrics | grep -c '^# TYPE hydra_pipeline_views_exact gauge$'
  1

An unknown run id is a clean 404: the JSON error body goes to stdout,
the status to stderr, and the exit code (7) is distinct from every
other hydra error family.

  $ hydra obs get --port "$PORT" /runs/nope > /dev/null 2> get.err; echo "exit=$?"
  exit=7
  $ cat get.err
  hydra: obs get /runs/nope: HTTP 404 Not Found

A busy port is a one-line error and exit 1, not a backtrace.

  $ hydra obs serve --obs-dir ledger --port "$PORT" > busy.out 2>&1; echo "exit=$?"
  exit=1
  $ sed 's/:[0-9][0-9]*:/:PORT:/' busy.out
  hydra: obs serve: bind 127.0.0.1:PORT: Address already in use

SIGTERM shuts the server down cleanly: `kill && wait` sees exit 0.

  $ kill $SPID
  $ wait $SPID; echo "wait=$?"
  wait=0

The in-run endpoint: --serve attaches the server to a summary run,
serves live registry metrics while it executes, and lingers with the
final state until SIGTERM (so a scraper always gets the last word).

  $ hydra summary toy.hydra -o served.summary --serve 0 > /dev/null 2> run.err &
  $ RPID=$!
  $ for i in $(seq 1 300); do grep -q 'run complete' run.err 2>/dev/null && break; sleep 0.1; done
  $ sed 's/:[0-9][0-9]*/:PORT/' run.err
  obs serve: listening on http://127.0.0.1:PORT
  obs serve: run complete; serving final state on http://127.0.0.1:PORT until SIGTERM
  $ PORT2=$(sed -n 's|.*http://127\.0\.0\.1:\([0-9]*\)$|\1|p' run.err | head -1)
  $ hydra obs get --port "$PORT2" /healthz
  ok
  $ hydra obs get --port "$PORT2" /runs/current | grep -c '"live": true'
  1
  $ hydra obs get --port "$PORT2" /runs/current/trace | grep -c '"traceEvents"'
  1
  $ hydra obs get --port "$PORT2" /progress | grep -c '"done_views": 2'
  1

The resource sampler feeds the live registry, so a scrape sees the
run's memory profile.

  $ hydra obs get --port "$PORT2" /metrics | grep -c '^hydra_process_rss_bytes'
  1

  $ kill $RPID
  $ wait $RPID; echo "wait=$?"
  wait=0

Observation is pure: the summary written with a live server attached
(and scraped) is byte-identical to a plain run's.

  $ hydra summary toy.hydra -o plain.summary > /dev/null
  $ cmp served.summary plain.summary

