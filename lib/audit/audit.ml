module Obs = Hydra_obs.Obs
module Json = Hydra_obs.Json

type op_kind = Scan | Datagen_scan | Filter | Join | Group_by | Aggregate

let all_kinds = [ Scan; Datagen_scan; Filter; Join; Group_by; Aggregate ]

let op_name = function
  | Scan -> "scan"
  | Datagen_scan -> "datagen_scan"
  | Filter -> "filter"
  | Join -> "join"
  | Group_by -> "group_by"
  | Aggregate -> "aggregate"

type record = {
  r_query : string;
  r_op : op_kind;
  r_rels : string list;
  r_key : string;
  r_expected : int option;
  r_observed : int;
}

let rel_error ~expected ~observed =
  float_of_int (observed - expected) /. float_of_int (max 1 expected)

let record_error r =
  match r.r_expected with
  | None -> None
  | Some e -> Some (rel_error ~expected:e ~observed:r.r_observed)

type expectation = {
  exp_key : string;
  exp_rels : string list;
  exp_card : int option;
  exp_children : expectation list;
}

let no_expectation =
  { exp_key = ""; exp_rels = []; exp_card = None; exp_children = [] }

(* ---- trails ---- *)

type trail = { mutable tr_records : record list; tr_m : Mutex.t }

let create () = { tr_records = []; tr_m = Mutex.create () }

(* registry handles are created once at module load so the disabled-mode
   cost of mirroring is the single flag test inside [Obs.incr] *)
let c_ops = Obs.counter "audit.ops"
let c_annotated = Obs.counter "audit.ops.annotated"
let c_exact = Obs.counter "audit.ops.exact"

let op_hist =
  List.map (fun k -> (k, Obs.histogram ("audit.relerr.op." ^ op_name k)))
    all_kinds

let mirror r =
  if Obs.enabled () then begin
    Obs.incr c_ops 1;
    match record_error r with
    | None -> ()
    | Some err ->
        let abs_err = Float.abs err in
        Obs.incr c_annotated 1;
        if abs_err = 0.0 then Obs.incr c_exact 1;
        Obs.observe (List.assoc r.r_op op_hist) abs_err;
        Obs.observe
          (Obs.histogram ("audit.relerr.rel." ^ String.concat "," r.r_rels))
          abs_err
  end

let record t r =
  mirror r;
  Mutex.lock t.tr_m;
  t.tr_records <- r :: t.tr_records;
  Mutex.unlock t.tr_m

let records t =
  Mutex.lock t.tr_m;
  let rs = List.rev t.tr_records in
  Mutex.unlock t.tr_m;
  rs

(* ---- roll-ups ---- *)

type group_stat = {
  gs_rels : string list;
  gs_ccs : int;
  gs_exact : int;
  gs_max_abs_error : float;
}

(* distinct annotated edges, first occurrence wins, order preserved *)
let dedup_annotated rs =
  let seen = Hashtbl.create 32 in
  List.filter
    (fun r ->
      r.r_expected <> None
      && not
           (Hashtbl.mem seen r.r_key
           || begin
                Hashtbl.replace seen r.r_key ();
                false
              end))
    rs

let group_by_key key rs =
  let order = ref [] in
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun r ->
      let k = key r in
      if not (Hashtbl.mem tbl k) then begin
        order := k :: !order;
        Hashtbl.replace tbl k []
      end;
      Hashtbl.replace tbl k (r :: Hashtbl.find tbl k))
    rs;
  List.rev_map (fun k -> (k, List.rev (Hashtbl.find tbl k))) !order
  |> List.rev

let stat_of rels rs =
  let exact = ref 0 and max_err = ref 0.0 in
  List.iter
    (fun r ->
      match record_error r with
      | None -> ()
      | Some err ->
          if err = 0.0 then Stdlib.incr exact;
          if Float.abs err > !max_err then max_err := Float.abs err)
    rs;
  {
    gs_rels = rels;
    gs_ccs = List.length rs;
    gs_exact = !exact;
    gs_max_abs_error = !max_err;
  }

let by_relation rs =
  dedup_annotated rs
  |> group_by_key (fun r -> String.concat "," r.r_rels)
  |> List.map (fun (_, group) ->
         stat_of (List.hd group).r_rels group)

let by_operator rs =
  let deduped = dedup_annotated rs in
  List.filter_map
    (fun kind ->
      match List.filter (fun r -> r.r_op = kind) deduped with
      | [] -> None
      | group -> Some (kind, stat_of [] group))
    all_kinds

let summary_stats rs =
  let seen = Hashtbl.create 32 in
  let distinct =
    List.filter
      (fun r ->
        not
          (Hashtbl.mem seen r.r_key
          || begin
               Hashtbl.replace seen r.r_key ();
               false
             end))
      rs
  in
  let annotated = List.filter (fun r -> r.r_expected <> None) distinct in
  let s = stat_of [] annotated in
  (List.length distinct, List.length annotated, s.gs_exact, s.gs_max_abs_error)

(* ---- report ---- *)

let record_json r =
  Json.Obj
    [
      ("query", Json.String r.r_query);
      ("op", Json.String (op_name r.r_op));
      ("rels", Json.List (List.map (fun s -> Json.String s) r.r_rels));
      ("expression", Json.String r.r_key);
      ( "expected",
        match r.r_expected with Some e -> Json.Int e | None -> Json.Null );
      ("observed", Json.Int r.r_observed);
      ( "rel_error",
        match record_error r with Some e -> Json.Float e | None -> Json.Null
      );
    ]

let stat_fields s =
  [
    ("ccs", Json.Int s.gs_ccs);
    ("exact", Json.Int s.gs_exact);
    ("max_abs_rel_error", Json.Float s.gs_max_abs_error);
  ]

let incident_json (ev : Obs.event) =
  let attr name =
    match List.assoc_opt name ev.Obs.ev_attrs with
    | Some (Obs.Str s) -> Json.String s
    | Some (Obs.Int i) -> Json.Int i
    | Some (Obs.Float f) -> Json.Float f
    | Some (Obs.Bool b) -> Json.Bool b
    | None -> Json.Null
  in
  Json.Obj
    [
      ("level", Json.String (Obs.level_name ev.Obs.ev_level));
      ("view", attr "view");
      ("rung", attr "rung");
      ("msg", Json.String ev.Obs.ev_msg);
    ]

let report_json ?reconciles ?(incidents = []) rs =
  let ops, annotated, exact, max_err = summary_stats rs in
  Json.Obj
    ([
       ("ops", Json.Int ops);
       ("annotated", Json.Int annotated);
       ("exact", Json.Int exact);
       ("max_abs_rel_error", Json.Float max_err);
     ]
    @ (match reconciles with
      | Some b -> [ ("reconciles", Json.Bool b) ]
      | None -> [])
    @ [
        ( "by_operator",
          Json.Obj
            (List.map
               (fun (kind, s) -> (op_name kind, Json.Obj (stat_fields s)))
               (by_operator rs)) );
        ( "by_relation",
          Json.List
            (List.map
               (fun s ->
                 Json.Obj
                   (( "rels",
                      Json.List
                        (List.map (fun r -> Json.String r) s.gs_rels) )
                   :: stat_fields s))
               (by_relation rs)) );
        ("records", Json.List (List.map record_json rs));
        ("incidents", Json.List (List.map incident_json incidents));
      ])

let write_report ?reconciles ?incidents path rs =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc
        (Json.to_string_pretty (report_json ?reconciles ?incidents rs));
      output_char oc '\n')
