(** Write-ahead run journal: the durability layer behind [--state-dir].

    One record per completed view solve, appended {e before} the run
    moves on, keyed by {!Formulate.fingerprint}. A resumed run looks
    every view up by fingerprint and replays recorded outcomes instead
    of re-solving, so a crash costs only the views that had not been
    journaled yet — and because fingerprints are content addresses,
    a resume after {e any} input change simply misses and re-solves
    (no invalidation logic to get wrong).

    Records are self-verifying lines ([hydra-journal <md5> <fields>]);
    a torn tail line from a crash mid-append, or any corrupt line, is
    skipped on load and counted in {!stats} — corruption is never
    fatal. Appends are mutex-serialized (pool workers share one
    journal), flushed and fsynced per record. *)

type t

type stats = {
  j_loaded : int;  (** valid records found on open *)
  j_skipped : int;  (** corrupt/torn lines ignored on open *)
  j_replayed : int;  (** successful {!find} lookups this run *)
  j_appended : int;  (** records written this run *)
}

val open_ : dir:string -> t
(** Open (creating [dir] as needed) the journal at [dir]/run.journal,
    loading every valid existing record. *)

val path : t -> string

val find : t -> key:string -> string option
(** The recorded payload for fingerprint [key], if any; counts a
    replay when found. *)

val append : t -> view:string -> key:string -> string -> unit
(** Durably record [payload] for [key] (fsync before returning); the
    [view] name is carried for human inspection of the journal. Also
    serves subsequent {!find}s in this process. *)

val stats : t -> stats

val close : t -> unit
(** Flush and close the append channel. Idempotent; {!find} keeps
    working afterwards, {!append} reopens. *)
