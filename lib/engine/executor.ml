(* Plan execution with per-operator output cardinalities.

   Results are binding sets in struct-of-arrays form: for each relation in
   scope, a parallel array of row indices. This keeps multi-way join
   results compact and makes cardinality counting free. *)

open Hydra_rel
module Obs = Hydra_obs.Obs
module Mclock = Hydra_obs.Mclock

(* per-operator output cardinalities, aggregated across a run *)
let m_scan_rows = Obs.counter "engine.scan.rows_out"
let m_datagen_rows = Obs.counter "engine.datagen.rows_out"
let m_filter_rows = Obs.counter "engine.filter.rows_out"
let m_join_rows = Obs.counter "engine.join.rows_out"
let m_group_rows = Obs.counter "engine.group_by.rows_out"
let m_agg_rows = Obs.counter "engine.aggregate.rows_in"

type rset = {
  width : int;  (* number of result rows *)
  bindings : (string * int array) list;  (* relation -> row ids *)
}

(* annotated operator tree: the paper's AQP (Sec. 2.1) *)
type annotated = {
  op : string;
  card : int;
  children : annotated list;
}

let empty_rset = { width = 0; bindings = [] }

let binding rset rname =
  match List.assoc_opt rname rset.bindings with
  | Some rows -> rows
  | None -> invalid_arg (Printf.sprintf "Executor: relation %S not in scope" rname)

(* qualified-attribute lookup for a given result row *)
let lookup_fn db rset =
  (* pre-resolve readers per attribute on first use *)
  let cache = Hashtbl.create 8 in
  fun i qattr ->
    let rd, rows =
      match Hashtbl.find_opt cache qattr with
      | Some v -> v
      | None ->
          let rname, aname = Schema.split_qualified qattr in
          let v = (Database.reader db rname aname, binding rset rname) in
          Hashtbl.add cache qattr v;
          v
    in
    rd rows.(i)

let filter_rset db rset pred =
  let lookup = lookup_fn db rset in
  let keep = ref [] in
  let n = ref 0 in
  for i = rset.width - 1 downto 0 do
    if Predicate.eval (fun a -> lookup i a) pred then begin
      keep := i :: !keep;
      incr n
    end
  done;
  let sel = Array.of_list !keep in
  {
    width = !n;
    bindings =
      List.map (fun (r, rows) -> (r, Array.map (fun i -> rows.(i)) sel)) rset.bindings;
  }

(* PK-FK hash join: probe side carries the fk, build side is the pk
   relation's current binding set. Handles both N:1 (fact->dim) and 1:N
   directions because the build side may contain duplicates of a pk value
   only if the pk relation was already joined — with true PK-FK schemas the
   build key is unique per base row. *)
let join_rset db left right spec =
  let fk_rel, fk_attr = Schema.split_qualified spec.Plan.fk_col in
  let pk_name = (Schema.find (Database.schema db) spec.Plan.pk_rel).Schema.pk in
  let pk_read = Database.reader db spec.Plan.pk_rel pk_name in
  let right_rows = binding right spec.Plan.pk_rel in
  (* build: pk value -> positions in the right rset *)
  let build = Hashtbl.create (max 16 right.width) in
  for j = 0 to right.width - 1 do
    let v = pk_read right_rows.(j) in
    Hashtbl.add build v j
  done;
  let fk_read = Database.reader db fk_rel fk_attr in
  let left_rows = binding left fk_rel in
  (* probe *)
  let pairs = ref [] and n = ref 0 in
  for i = left.width - 1 downto 0 do
    let v = fk_read left_rows.(i) in
    List.iter
      (fun j ->
        pairs := (i, j) :: !pairs;
        incr n)
      (Hashtbl.find_all build v)
  done;
  let pairs = Array.of_list !pairs in
  let take_left rows = Array.map (fun (i, _) -> rows.(i)) pairs in
  let take_right rows = Array.map (fun (_, j) -> rows.(j)) pairs in
  {
    width = !n;
    bindings =
      List.map (fun (r, rows) -> (r, take_left rows)) left.bindings
      @ List.map (fun (r, rows) -> (r, take_right rows)) right.bindings;
  }

(* duplicate elimination: keep the first result row of each distinct value
   combination of the grouping attributes *)
let group_rset db rset attrs =
  let lookup = lookup_fn db rset in
  let seen = Hashtbl.create (max 16 rset.width) in
  let keep = ref [] and n = ref 0 in
  for i = 0 to rset.width - 1 do
    let key = List.map (fun a -> lookup i a) attrs in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.replace seen key ();
      keep := i :: !keep;
      incr n
    end
  done;
  let sel = Array.of_list (List.rev !keep) in
  {
    width = !n;
    bindings =
      List.map
        (fun (r, rows) -> (r, Array.map (fun i -> rows.(i)) sel))
        rset.bindings;
  }

(* operator span: input/output cardinalities, counter update, throughput.
   Disabled tracing takes the [f ()] branch only — the executor's hot
   path pays a single flag test per operator. *)
let op_span name counter ~rows_in f =
  if not (Obs.enabled ()) then f ()
  else
    Obs.with_span name (fun () ->
        let t = Mclock.now () in
        let rset, ann = f () in
        let dt = Float.max (Mclock.now () -. t) 1e-9 in
        Obs.incr counter rset.width;
        Obs.span_attr "rows_in" (Obs.Int rows_in);
        Obs.span_attr "rows_out" (Obs.Int rset.width);
        Obs.span_attr "rows_per_sec"
          (Obs.Float (float_of_int (Stdlib.max rows_in rset.width) /. dt));
        (rset, ann))

let scan_is_generated db rname =
  match Database.source db rname with
  | Database.Generated _ -> true
  | Database.Stored _ -> false

(* ---- volumetric-accuracy accounting (hydra.audit) ----

   An audited execution threads an [Audit.expectation] tree (the
   CC-derived expected cardinality per operator edge, built by
   Workload.audit_expectation) alongside the plan and appends one audit
   record per operator. Recording happens after the operator's span
   closes and never touches the rset, so audited execution returns
   bit-identical results ("observation is pure"); unaudited [exec]
   passes [None] and pays one match per operator. *)

module Audit = Hydra_audit.Audit

let record_audit ctx (e : Audit.expectation) kind observed =
  match ctx with
  | None -> ()
  | Some (query, trail) ->
      if e.Audit.exp_key <> "" then
        Audit.record trail
          {
            Audit.r_query = query;
            r_op = kind;
            r_rels = e.Audit.exp_rels;
            r_key = e.Audit.exp_key;
            r_expected = e.Audit.exp_card;
            r_observed = observed;
          }

let child1 (e : Audit.expectation) =
  match e.Audit.exp_children with [ c ] -> c | _ -> Audit.no_expectation

let child2 (e : Audit.expectation) =
  match e.Audit.exp_children with
  | [ a; b ] -> (a, b)
  | _ -> (Audit.no_expectation, Audit.no_expectation)

let rec exec_aux ctx db plan e =
  match plan with
  | Plan.Scan rname ->
      let generated = scan_is_generated db rname in
      let counter = if generated then m_datagen_rows else m_scan_rows in
      let res =
        op_span "exec.scan" counter ~rows_in:0 (fun () ->
            Obs.span_attr "rel" (Obs.Str rname);
            Obs.span_attr "source"
              (Obs.Str (if generated then "generated" else "stored"));
            let n = Database.nrows db rname in
            let rset =
              { width = n; bindings = [ (rname, Array.init n Fun.id) ] }
            in
            (rset, { op = "Scan(" ^ rname ^ ")"; card = n; children = [] }))
      in
      record_audit ctx e
        (if generated then Audit.Datagen_scan else Audit.Scan)
        (fst res).width;
      res
  | Plan.Filter (pred, child) ->
      let child_rset, child_ann = exec_aux ctx db child (child1 e) in
      let res =
        op_span "exec.filter" m_filter_rows ~rows_in:child_rset.width
          (fun () ->
            let rset = filter_rset db child_rset pred in
            ( rset,
              {
                op = Format.asprintf "Filter(%a)" Predicate.pp pred;
                card = rset.width;
                children = [ child_ann ];
              } ))
      in
      record_audit ctx e Audit.Filter (fst res).width;
      res
  | Plan.Group_by (attrs, child) ->
      let child_rset, child_ann = exec_aux ctx db child (child1 e) in
      let res =
        op_span "exec.group_by" m_group_rows ~rows_in:child_rset.width
          (fun () ->
            let rset = group_rset db child_rset attrs in
            ( rset,
              {
                op = Printf.sprintf "GroupBy(%s)" (String.concat "," attrs);
                card = rset.width;
                children = [ child_ann ];
              } ))
      in
      record_audit ctx e Audit.Group_by (fst res).width;
      res
  | Plan.Join (l, r, spec) ->
      let le, re = child2 e in
      let lres, lann = exec_aux ctx db l le in
      let rres, rann = exec_aux ctx db r re in
      let res =
        op_span "exec.join" m_join_rows ~rows_in:(lres.width + rres.width)
          (fun () ->
            let rset = join_rset db lres rres spec in
            ( rset,
              {
                op =
                  Printf.sprintf "Join(%s=%s.pk)" spec.Plan.fk_col
                    spec.Plan.pk_rel;
                card = rset.width;
                children = [ lann; rann ];
              } ))
      in
      record_audit ctx e Audit.Join (fst res).width;
      res

let exec db plan = exec_aux None db plan Audit.no_expectation

let exec_audited ?(query = "") trail expect db plan =
  exec_aux (Some (query, trail)) db plan expect

let cardinality db plan = (snd (exec db plan)).card

(* streaming aggregate over a base relation, bypassing rset materialization;
   used by the data-supply-time experiment (Fig. 15) where the query is a
   simple aggregate and the cost is dominated by tuple supply *)
let aggregate_sum db rname cname =
  let run () =
    let n = Database.nrows db rname in
    let rd = Database.reader db rname cname in
    let acc = ref 0 in
    for i = 0 to n - 1 do
      acc := !acc + rd i
    done;
    (n, !acc)
  in
  if not (Obs.enabled ()) then snd (run ())
  else
    Obs.with_span "exec.aggregate_sum" (fun () ->
        let t = Mclock.now () in
        let n, sum = run () in
        let dt = Float.max (Mclock.now () -. t) 1e-9 in
        Obs.incr m_agg_rows n;
        Obs.span_attr "rel" (Obs.Str rname);
        Obs.span_attr "source"
          (Obs.Str
             (if scan_is_generated db rname then "generated" else "stored"));
        Obs.span_attr "rows_in" (Obs.Int n);
        Obs.span_attr "rows_per_sec" (Obs.Float (float_of_int n /. dt));
        sum)

let aggregate_sum_audited ?(query = "") trail ~expected db rname cname =
  let sum = aggregate_sum db rname cname in
  let n = Database.nrows db rname in
  Audit.record trail
    {
      Audit.r_query = query;
      r_op = Audit.Aggregate;
      r_rels = [ rname ];
      r_key = Printf.sprintf "aggregate(%s.%s)" rname cname;
      r_expected = expected;
      r_observed = n;
    };
  sum

let rec pp_annotated fmt a =
  Format.fprintf fmt "@[<v 2>%s [card=%d]" a.op a.card;
  List.iter (fun c -> Format.fprintf fmt "@,%a" pp_annotated c) a.children;
  Format.fprintf fmt "@]"
