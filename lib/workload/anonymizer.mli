(** Client-side anonymization (Sec. 3.1): before schema, metadata and CCs
    leave the client site, relation and attribute names are masked and
    attribute values pass through an invertible per-attribute affine map.
    The vendor works entirely in the masked numeric space; the client can
    reverse the mapping when inspecting results. *)

open Hydra_rel

type t

val create : ?seed:int -> Schema.t -> t
(** Deterministic mask derived from the seed. *)

val masked_rel : t -> string -> string
val masked_attr : t -> string -> string
(** Masked leaf name of a qualified attribute. *)

val masked_qualified : t -> string -> string
(** Masked ["rel.attr"] form. *)

val value_fwd : t -> string -> int -> int
(** Client-to-vendor value mapping for a qualified attribute. *)

val value_bwd : t -> string -> int -> int
(** Inverse of {!value_fwd}. *)

val anonymize_interval : t -> string -> Interval.t -> Interval.t
val anonymize_predicate : t -> Predicate.t -> Predicate.t
val anonymize_schema : t -> Schema.t -> Schema.t
val anonymize_cc : t -> Cc.t -> Cc.t
