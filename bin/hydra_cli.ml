(* hydra — command-line front end for the regeneration pipeline.

   A spec file (see Cc_parser) declares the schema, the cardinality
   constraints harvested from the client's annotated query plans, and
   optionally queries. The CLI turns specs into database summaries,
   summaries into materialized CSV data, and validates volumetric
   similarity, mirroring the vendor-site flow of Fig. 2. *)

open Cmdliner
module Obs = Hydra_obs.Obs
module Json = Hydra_obs.Json
module Mclock = Hydra_obs.Mclock
module Flame = Hydra_obs.Flame
module Ledger = Hydra_obs.Ledger
module Progress = Hydra_obs.Progress
module Resource = Hydra_obs.Resource
module Serve = Hydra_obs.Serve
module Pool = Hydra_par.Pool
module Supervisor = Hydra_par.Supervisor
module Chaos = Hydra_chaos.Chaos

(* shared parallelism knob: --jobs beats HYDRA_JOBS beats the machine's
   recommended domain count. Output is identical for any value (the
   determinism contract in Pipeline/Tuple_gen/Workload). *)
let jobs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Solve views, materialize row-range shards and evaluate workload \
           queries on $(docv) domains. Defaults to the $(b,HYDRA_JOBS) \
           environment variable, then to the machine's core count. The \
           output is identical for any value.")

let resolve_jobs = function
  | Some n when n < 1 ->
      invalid_arg
        (Printf.sprintf "--jobs must be at least 1 (got %d)" n)
  | Some n -> n
  | None -> Pool.default_jobs ()

(* shared observability flags: any of them switches the global obs
   registry on; HYDRA_OBS covers the no-flag case (parsed in [main]) *)
let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Append one JSON line per finished span and event to $(docv) \
           (JSONL trace).")

let metrics_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE"
        ~doc:
          "Write a JSON snapshot of all counters, gauges, histograms and \
           span aggregates to $(docv) when the command exits.")

let setup_obs trace metrics_out =
  (match trace with
  | Some path ->
      Obs.add_sink (Obs.jsonl_sink path);
      Obs.set_enabled true
  | None -> ());
  match metrics_out with
  | Some path ->
      Obs.set_metrics_out path;
      Obs.set_enabled true
  | None -> ()

let flame_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "flame-out" ] ~docv:"FILE"
        ~doc:
          "Write folded stacks (flamegraph.pl-compatible, one \
           $(i,path value_us) line per distinct span path) to $(docv) when \
           the command exits (implies metric collection).")

let chrome_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "chrome-out" ] ~docv:"FILE"
        ~doc:
          "Write a Chrome trace-event JSON timeline of every span to \
           $(docv) when the command exits — opens directly in Perfetto, \
           chrome://tracing or speedscope; concurrent domains land in \
           separate lanes (implies metric collection).")

(* one shared span collector feeds --flame-out, --chrome-out and the run
   ledger's folded stacks. The sinks write on close, which
   [at_exit Obs.finish] triggers — so the exports survive the degraded
   exit codes 3/4, like metrics *)
let setup_span_exports ?(need_collector = false) flame_out chrome_out =
  if flame_out = None && chrome_out = None && not need_collector then None
  else begin
    let c = Flame.create () in
    Obs.add_sink (Flame.sink ?out:flame_out c);
    (match chrome_out with
    | None -> ()
    | Some path ->
        (* piggybacks on the collector above instead of collecting a
           second span list; only the close action differs *)
        Obs.add_sink
          {
            Obs.sink_span = (fun _ -> ());
            sink_event = (fun _ -> ());
            sink_close =
              (fun () -> Hydra_obs.Trace_event.write path (Flame.spans c));
          });
    Obs.set_enabled true;
    Some c
  end

(* run telemetry ledger: --obs-dir beats HYDRA_OBS_DIR; absent both, no
   archiving. Shared by the recording commands and the `hydra obs`
   analysis family. *)
let obs_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "obs-dir" ]
        ~env:(Cmd.Env.info "HYDRA_OBS_DIR") ~docv:"DIR"
        ~doc:
          "Run telemetry ledger directory. Each instrumented run archives \
           one atomic, digest-checked record (configuration fingerprints, \
           per-view outcomes, the final metrics snapshot with \
           percentiles, the event log, folded stacks) under $(docv); \
           $(b,hydra obs list/show/diff/top/prune) analyze them. Defaults \
           to $(b,HYDRA_OBS_DIR) when set.")

let progress_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "progress" ] ~docv:"SECONDS"
        ~doc:
          "Live progress export every $(docv) seconds: a one-line \
           heartbeat on stderr (views done/total, rung split, cache \
           hits, retries) and an atomically rewritten Prometheus-text \
           $(i,metrics.prom) (in --obs-dir if given, else the working \
           directory). A final tick fires at exit. Also available as a \
           $(b,progress=N) token in $(b,HYDRA_OBS).")

(* the resource sampler rides along with every live-observation mode
   (--progress, --serve): its gauges (process.rss_bytes, gc.*_words)
   are what make a mid-run scrape worth taking *)
let resource_sampler : Resource.t option ref = ref None

let start_resource_sampler () =
  match !resource_sampler with
  | Some _ -> ()
  | None ->
      Obs.set_enabled true;
      let t = Resource.start () in
      resource_sampler := Some t;
      at_exit (fun () -> Resource.stop t)

let progress_ticker : Progress.t option ref = ref None

let start_progress ?obs_dir period =
  match !progress_ticker with
  | Some _ -> () (* one ticker per process, flag beats env by order *)
  | None ->
      Obs.set_enabled true;
      start_resource_sampler ();
      let prom_out =
        match obs_dir with
        | Some d ->
            Hydra_durable.Durable_io.mkdir_p d;
            Filename.concat d "metrics.prom"
        | None -> "metrics.prom"
      in
      let t =
        Progress.start ~heartbeat:stderr ~prom_out ~period_s:period ()
      in
      progress_ticker := Some t;
      (* runs before the [at_exit Obs.finish] registered at startup
         (reverse registration order), so the final prom rewrite still
         sees every sink open *)
      at_exit (fun () -> Progress.stop t)

let audit_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "audit-out" ] ~docv:"FILE"
        ~doc:
          "Re-execute every CC's plan against the regenerated database \
           with per-operator cardinality accounting and write the \
           volumetric-accuracy audit report (expected vs observed rows \
           per operator, per-relation roll-up reconciled against \
           validation, degraded-view incidents) to $(docv). Implies \
           metric collection.")

(* audited validation against a database: the audit trail, the validation
   report, and whether the two roll-ups agree exactly *)
let run_audit db ccs =
  let trail = Hydra_audit.Audit.create () in
  let v = Hydra_core.Validate.check ~audit:trail db ccs in
  let records = Hydra_audit.Audit.records trail in
  let reconciles =
    Hydra_core.Validate.reconciles_audit v
      (Hydra_audit.Audit.by_relation records)
  in
  (v, records, reconciles)

let audit_incidents () =
  List.filter
    (fun (ev : Obs.event) -> List.mem_assoc "view" ev.Obs.ev_attrs)
    (Obs.recent_events ())

let print_audit_line records reconciles path =
  let ops, annotated, exact, max_err =
    Hydra_audit.Audit.summary_stats records
  in
  Printf.printf
    "audit: %d operators (%d annotated, %d exact), max |rel err| %.2f%% -> \
     %s%s\n"
    ops annotated exact (100.0 *. max_err) path
    (if reconciles then " (reconciles with validate)"
     else " (DOES NOT reconcile with validate)")

let read_spec path =
  try Ok (Hydra_workload.Cc_parser.parse_file path) with
  | Hydra_workload.Cc_parser.Parse_error m ->
      Error (Printf.sprintf "parse error in %s: %s" path m)
  | Hydra_rel.Schema.Schema_error m ->
      Error (Printf.sprintf "schema error in %s: %s" path m)
  | Sys_error m -> Error m

let or_die = function
  | Ok v -> v
  | Error m ->
      prerr_endline ("hydra: " ^ m);
      exit 1

(* ---- live telemetry endpoint (hydra.net / Hydra_obs.Serve) ---- *)

let serve_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "serve" ] ~docv:"PORT"
        ~doc:
          "Serve live telemetry on http://127.0.0.1:$(docv) while the run \
           executes: $(b,/healthz), $(b,/metrics) (Prometheus text), \
           $(b,/progress), $(b,/runs), $(b,/runs/current/trace). Port 0 \
           picks an ephemeral port (printed on stderr). After the run \
           completes the final state stays up until SIGTERM/SIGINT. \
           Scraping never changes the output — summaries are \
           byte-identical with or without a scraper attached. Also \
           available as a $(b,serve=PORT) token in $(b,HYDRA_OBS).")

let live_server : Serve.t option ref = ref None

let start_live_serve ?obs_dir ?spans port =
  match !live_server with
  | Some _ -> () (* one endpoint per process, same rule as the ticker *)
  | None -> (
      Obs.set_enabled true;
      start_resource_sampler ();
      match Serve.start ?obs_dir ?spans ~live:true ~port () with
      | Ok s ->
          live_server := Some s;
          Printf.eprintf "obs serve: listening on http://127.0.0.1:%d\n%!"
            (Serve.port s)
      | Error m -> or_die (Error ("serve: " ^ m)))

(* block until SIGTERM/SIGINT; exit stays clean (the caller's exit code,
   not a signal death), so `kill && wait` in scripts sees 0 *)
let wait_for_shutdown () =
  let stop = Atomic.make false in
  let handle = Sys.Signal_handle (fun _ -> Atomic.set stop true) in
  (try Sys.set_signal Sys.sigterm handle with Invalid_argument _ -> ());
  (try Sys.set_signal Sys.sigint handle with Invalid_argument _ -> ());
  while not (Atomic.get stop) do
    try Unix.sleepf 0.05 with Unix.Unix_error (EINTR, _, _) -> ()
  done

(* the "final state served until shutdown" half of --serve/serve=PORT;
   called after the run (and its ledger record) completes, and again as
   a no-op from the main wrapper for non-summary subcommands *)
let serve_linger () =
  match !live_server with
  | None -> ()
  | Some s ->
      live_server := None;
      Printf.eprintf
        "obs serve: run complete; serving final state on \
         http://127.0.0.1:%d until SIGTERM\n\
         %!"
        (Serve.port s);
      wait_for_shutdown ();
      Serve.stop s

(* uniform rendering of domain errors raised below the command layer: one
   actionable line on stderr, no OCaml backtrace, and a distinct exit code
   per error family so scripts can tell a bad spec from a solver fault.

     1   parse / schema / usage errors
     2   validation threshold exceeded
     3   summary degraded: some views Relaxed
     4   summary degraded: some views Fallback
     5   obs diff: a gated metric regressed between two ledger runs
     6   fuzz: an end-to-end invariant failed (reproducer written)
     7   obs get: the endpoint answered with a non-2xx status
     10  preprocessing error        11  LP formulation error
     12  summary assembly error, or a corrupt summary/durable artifact
     13  align-and-merge error
     14  malformed annotated plan (harvest error)
     70  simulated chaos crash (matches the Kill injection's exit code) *)
let protecting f x =
  let die code m =
    prerr_endline ("hydra: " ^ m);
    exit code
  in
  try f x with
  | Hydra_rel.Schema.Schema_error m -> die 1 ("schema: " ^ m)
  | Hydra_core.Summary.Summary_error m -> die 12 ("summary: " ^ m)
  | Hydra_core.Summary.Corrupt c ->
      die 12
        (Printf.sprintf "summary: %s is corrupt (line %d: %s)"
           c.Hydra_core.Summary.sum_path c.Hydra_core.Summary.sum_line
           c.Hydra_core.Summary.sum_reason)
  | Hydra_durable.Durable_io.Corrupt c ->
      die 12
        (Printf.sprintf "corrupt artifact: %s (offset %d: %s)"
           c.Hydra_durable.Durable_io.dur_path
           c.Hydra_durable.Durable_io.dur_offset
           c.Hydra_durable.Durable_io.dur_reason)
  | Hydra_core.Preprocess.Preprocess_error m -> die 10 ("preprocess: " ^ m)
  | Hydra_core.Formulate.Formulation_error m -> die 11 ("formulation: " ^ m)
  | Hydra_core.Align.Align_error m -> die 13 ("alignment: " ^ m)
  | Hydra_workload.Workload.Harvest_error f ->
      die 14 ("harvest: " ^ Hydra_workload.Workload.harvest_fault_message f)
  | Hydra_workload.Cc_parser.Parse_error m -> die 1 ("parse: " ^ m)
  | Chaos.Crashed site ->
      die Chaos.kill_exit_code ("chaos: simulated crash at site " ^ site)
  | Pool.Batch_failure fs ->
      die 1
        ("parallel batch failed: "
        ^ String.concat "; "
            (List.map
               (fun (f : Pool.failure) ->
                 Printf.sprintf "task %d: %s" f.Pool.f_index
                   (Printexc.to_string f.Pool.f_exn))
               fs))
  | Invalid_argument m -> die 1 m
  | Sys_error m -> die 1 m

(* solve cache: --cache-dir beats HYDRA_CACHE; absent both, no caching.
   The directory is created on first use. *)
let cache_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "cache-dir" ]
        ~env:(Cmd.Env.info "HYDRA_CACHE") ~docv:"DIR"
        ~doc:
          "Content-addressed solve cache directory. Each view's LP solve \
           is keyed by a fingerprint of its formulated problem and solver \
           budgets; re-running an unchanged spec replays the stored \
           solutions (and reports the same per-view outcomes) without \
           touching the solver. Corrupt or foreign entries are treated as \
           misses. Defaults to $(b,HYDRA_CACHE) when set.")

let open_cache = Option.map (fun d -> Hydra_cache.Cache.create ~dir:d)

(* crash-safe runs: --state-dir journals every solved view write-ahead,
   so re-running the same command after a crash replays completed views
   and re-solves only the rest *)
let state_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "state-dir" ]
        ~env:(Cmd.Env.info "HYDRA_STATE") ~docv:"DIR"
        ~doc:
          "Run-journal directory for crash-safe regeneration. Every \
           solved view is durably journaled (write-ahead, fsynced) under \
           $(docv)/run.journal before the run proceeds; re-running after \
           a crash or kill replays the journaled views and re-solves \
           only the missing ones, producing a byte-identical summary. \
           Corrupt or torn journal records are skipped, never fatal. \
           Defaults to $(b,HYDRA_STATE) when set.")

let chaos_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "chaos" ]
        ~env:(Cmd.Env.info "HYDRA_CHAOS") ~docv:"PLAN"
        ~doc:
          "Deterministic fault injection (testing). $(docv) is \
           comma-separated key=value pairs: $(b,site)=<name> (required; \
           one of solve, pool.task, cache.read, cache.write, \
           journal.append, summary.save, materialize.shard), \
           $(b,kind)=transient|crash|kill (default crash), \
           $(b,after)=N (fire on the N-th pass, default 1), \
           $(b,times)=N (consecutive passes that fire, default 1, 0 = \
           unlimited). Example: --chaos site=solve,kind=kill,after=2.")

(* LP engine: --solve-mode beats HYDRA_SOLVE_MODE. The CLI defaults to
   float-first (shadow simplex in doubles, terminal basis verified in
   exact arithmetic — byte-identical results, much less Rat churn); the
   library default stays exact so programmatic callers and existing
   baselines keep the reference semantics unless they opt in. *)
let solve_mode_arg =
  Arg.(
    value
    & opt
        (enum
           [
             ("exact", Hydra_lp.Simplex.Exact);
             ("float-first", Hydra_lp.Simplex.Float_first);
           ])
        Hydra_lp.Simplex.Float_first
    & info [ "solve-mode" ]
        ~env:(Cmd.Env.info "HYDRA_SOLVE_MODE") ~docv:"MODE"
        ~doc:
          "LP engine: $(b,float-first) (default) runs the \
           double-precision shadow simplex and verifies its terminal \
           basis in exact rational arithmetic (repairing with exact \
           pivots when needed), falling back to the all-exact solver on \
           any numerical ambiguity; $(b,exact) solves everything in \
           rational arithmetic. Both modes produce byte-identical \
           summaries; float-first is faster on wide views. Defaults to \
           $(b,HYDRA_SOLVE_MODE) when set.")

let arm_chaos = function
  | None -> ()
  | Some spec -> (
      match Chaos.parse spec with
      | Ok plan -> Chaos.arm plan
      | Error m -> or_die (Error m))

let task_retries_arg =
  Arg.(
    value & opt int 2
    & info [ "task-retries" ] ~docv:"N"
        ~doc:
          "Supervised retries for transient task failures in the solve \
           pool (0 disables retry). Retries only affect timing, never \
           output.")

let task_backoff_arg =
  Arg.(
    value & opt float 0.05
    & info [ "task-backoff" ] ~docv:"SECONDS"
        ~doc:
          "Base backoff before the first supervised retry; doubles per \
           attempt (capped), with deterministic jitter.")

let supervision_of ~task_retries ~task_backoff =
  {
    Supervisor.default_policy with
    Supervisor.max_retries = max 0 task_retries;
    base_backoff_s = max 0.0 task_backoff;
  }

let disposition_word = function
  | Hydra_core.Formulate.Cache_off -> "off"
  | Hydra_core.Formulate.Cache_bypass -> "bypass"
  | Hydra_core.Formulate.Cache_hit -> "hit"
  | Hydra_core.Formulate.Cache_miss -> "miss"

let spec_arg =
  let doc = "Spec file with table and cc declarations." in
  Arg.(required & pos 0 (some file) None & info [] ~docv:"SPEC" ~doc)

let summary_pos_arg =
  let doc = "Database summary file produced by $(b,hydra summary)." in
  Arg.(required & pos 1 (some file) None & info [] ~docv:"SUMMARY" ~doc)

(* ---- summary ---- *)

let status_line (v : Hydra_core.Pipeline.view_stats) =
  match v.Hydra_core.Pipeline.status with
  | Hydra_core.Pipeline.Exact -> "exact"
  | Hydra_core.Pipeline.Relaxed [] -> "relaxed (consistency only)"
  | Hydra_core.Pipeline.Relaxed vs ->
      Printf.sprintf "relaxed (%d CC%s violated)" (List.length vs)
        (if List.length vs = 1 then "" else "s")
  | Hydra_core.Pipeline.Fallback reason -> "fallback: " ^ reason

let status_word (v : Hydra_core.Pipeline.view_stats) =
  match v.Hydra_core.Pipeline.status with
  | Hydra_core.Pipeline.Exact -> "exact"
  | Hydra_core.Pipeline.Relaxed _ -> "relaxed"
  | Hydra_core.Pipeline.Fallback _ -> "fallback"

(* machine-readable run report: the whole pipeline result plus the final
   metrics snapshot, as one JSON object on stdout *)
let run_report_json ?audit ?cache ~jobs out (result : Hydra_core.Pipeline.result)
    =
  let open Hydra_core.Pipeline in
  let summary = result.summary in
  let metrics_obj kvs =
    Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) kvs)
  in
  let view_json (v : view_stats) =
    let violations =
      match v.status with
      | Relaxed vs ->
          Json.List
            (List.map
               (fun (viol : violation) ->
                 Json.Obj
                   [
                     ( "predicate",
                       Json.String
                         (Hydra_rel.Predicate.to_string viol.v_pred) );
                     ("expected", Json.Int viol.v_expected);
                     ("achieved", Json.Int viol.v_achieved);
                   ])
               vs)
      | _ -> Json.List []
    in
    Json.Obj
      [
        ("rel", Json.String v.rel);
        ("status", Json.String (status_word v));
        ( "fallback_reason",
          match v.status with
          | Fallback r -> Json.String r
          | _ -> Json.Null );
        ("lp_vars", Json.Int v.num_lp_vars);
        ("lp_constraints", Json.Int v.num_lp_constraints);
        ("solve_seconds", Json.Float v.solve_seconds);
        ("cache", Json.String (disposition_word v.cache));
        ("journal", Json.String (disposition_word v.journal));
        ("attempts", Json.Int v.attempts);
        ("violations", violations);
        ("metrics", metrics_obj v.metrics);
      ]
  in
  let cache_json =
    match cache with
    | None -> []
    | Some c ->
        let s = Hydra_cache.Cache.stats c in
        [
          ( "cache",
            Json.Obj
              [
                ("dir", Json.String (Hydra_cache.Cache.dir c));
                ("hits", Json.Int s.Hydra_cache.Cache.hits);
                ("misses", Json.Int s.Hydra_cache.Cache.misses);
                ("stores", Json.Int s.Hydra_cache.Cache.stores);
              ] );
        ]
  in
  let d = result.diagnostics in
  Json.Obj
    ([
      ("output", Json.String out);
      ("jobs", Json.Int jobs);
      ("total_seconds", Json.Float result.total_seconds);
      ("preprocess_seconds", Json.Float result.preprocess_seconds);
      ("assemble_seconds", Json.Float result.assemble_seconds);
      ( "summary",
        Json.Obj
          [
            ( "rows",
              Json.Int (Hydra_core.Summary.summary_rows summary) );
            ("tuples", Json.Int (Hydra_core.Summary.total_rows summary));
            ( "extra_tuples",
              Json.Obj
                (List.map
                   (fun (r, n) -> (r, Json.Int n))
                   summary.Hydra_core.Summary.extra_tuples) );
          ] );
      ("views", Json.List (List.map view_json result.views));
      ( "diagnostics",
        Json.Obj
          [
            ("exact_views", Json.Int d.exact_views);
            ("relaxed_views", Json.Int d.relaxed_views);
            ("fallback_views", Json.Int d.fallback_views);
            ( "notes",
              Json.List (List.map (fun n -> Json.String n) d.notes) );
          ] );
      ("metrics", Obs.metrics_json ());
    ]
    @ cache_json
    @ match audit with Some a -> [ ("audit", a) ] | None -> [])

(* text rendering of the metrics registry, aligned name/value pairs;
   with [?result]/[?cache], the resume story of the run (how the journal
   and the solve cache served it) follows the tables — the same counts
   --json always carried *)
let print_metrics_report ?cache ?result () =
  let snap = Obs.snapshot () in
  let kvs = Obs.flatten snap in
  print_string "metrics report:\n";
  List.iter
    (fun (k, v) ->
      if Float.is_integer v && Float.abs v < 1e15 then
        Printf.printf "  %-44s %d\n" k (int_of_float v)
      else Printf.printf "  %-44s %.6f\n" k v)
    kvs;
  let populated =
    List.filter (fun (_, (p50, p95, p99)) -> p50 +. p95 +. p99 > 0.0)
      (Obs.percentiles snap)
  in
  if populated <> [] then begin
    print_string "histogram percentiles (p50 / p95 / p99):\n";
    List.iter
      (fun (k, (p50, p95, p99)) ->
        Printf.printf "  %-44s %.6f / %.6f / %.6f\n" k p50 p95 p99)
      populated
  end;
  match result with
  | None -> ()
  | Some (r : Hydra_core.Pipeline.result) ->
      let views = r.Hydra_core.Pipeline.views in
      let nj d =
        List.length
          (List.filter
             (fun (v : Hydra_core.Pipeline.view_stats) ->
               v.Hydra_core.Pipeline.journal = d)
             views)
      in
      print_string "resume story:\n";
      if
        List.exists
          (fun (v : Hydra_core.Pipeline.view_stats) ->
            v.Hydra_core.Pipeline.journal <> Hydra_core.Formulate.Cache_off)
          views
      then
        Printf.printf "  journal: %d view(s) replayed, %d solved fresh\n"
          (nj Hydra_core.Formulate.Cache_hit)
          (nj Hydra_core.Formulate.Cache_miss)
      else print_string "  journal: off\n";
      (match cache with
      | Some c ->
          let s = Hydra_cache.Cache.stats c in
          Printf.printf "  cache: %d hit(s), %d miss(es), %d store(s)\n"
            s.Hydra_cache.Cache.hits s.Hydra_cache.Cache.misses
            s.Hydra_cache.Cache.stores
      | None -> print_string "  cache: off\n")

(* archive the finished run in the --obs-dir ledger; the confirmation
   goes to stderr so --json stdout stays parseable *)
let record_obs_run ~dir ~subcommand ~spec_path ~jobs ~exit_code ~collector
    ~state_dir (result : Hydra_core.Pipeline.result) =
  let open Hydra_core.Pipeline in
  let spec_digest =
    try Digest.to_hex (Digest.file spec_path) with Sys_error _ -> ""
  in
  let views =
    List.map
      (fun (v : view_stats) ->
        {
          Ledger.v_rel = v.rel;
          v_status = status_word v;
          v_fingerprint = v.fingerprint;
          v_cache = disposition_word v.cache;
          v_journal = disposition_word v.journal;
          v_seconds = v.solve_seconds;
        })
      result.views
  in
  let nj d =
    List.length
      (List.filter (fun (v : view_stats) -> v.journal = d) result.views)
  in
  let journal =
    match state_dir with
    | None -> []
    | Some _ ->
        [
          ("replayed", nj Hydra_core.Formulate.Cache_hit);
          ("solved", nj Hydra_core.Formulate.Cache_miss);
        ]
  in
  let run =
    {
      Ledger.r_subcommand = subcommand;
      r_config_digest = Ledger.config_digest ~subcommand [ spec_digest ];
      r_spec_digest = spec_digest;
      r_jobs = jobs;
      r_exit = exit_code;
      r_seconds = result.total_seconds;
      r_views = views;
      r_journal = journal;
      r_metrics = Obs.metrics_json ();
      r_events = Obs.recent_events ();
      r_folded =
        (match collector with
        | Some c -> Flame.folded_string (Flame.spans c)
        | None -> "");
    }
  in
  let id = Ledger.record ~dir run in
  Printf.eprintf "obs: run %s archived -> %s\n%!" id dir

let summary_cmd =
  let out =
    Arg.(
      value
      & opt string "db.summary"
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output summary file.")
  in
  let deadline =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline" ] ~docv:"SECONDS"
          ~doc:
            "Wall-clock budget for the whole run; views still unsolved when \
             it expires degrade to their closest-feasible or fallback \
             summaries.")
  in
  let max_nodes =
    Arg.(
      value & opt int 2000
      & info [ "max-nodes" ] ~docv:"N"
          ~doc:"Branch-and-bound node budget per view before degradation.")
  in
  let report =
    Arg.(
      value & flag
      & info [ "report" ]
          ~doc:
            "Print a text table of all collected metrics after the run \
             (implies metric collection).")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Print one machine-readable JSON run report on stdout instead \
             of the human-readable lines (implies metric collection). The \
             summary file is still written.")
  in
  let run spec_path out deadline_s max_nodes jobs cache_dir state_dir chaos
      solve_mode task_retries task_backoff trace metrics_out audit_out
      flame_out chrome_out obs_dir progress serve report json =
    setup_obs trace metrics_out;
    let collector =
      setup_span_exports
        ~need_collector:(obs_dir <> None || serve <> None)
        flame_out chrome_out
    in
    (match progress with Some p -> start_progress ?obs_dir p | None -> ());
    (match serve with
    | Some port ->
        let spans = Option.map (fun c () -> Flame.spans c) collector in
        start_live_serve ?obs_dir ?spans port
    | None -> ());
    if report || json || audit_out <> None || obs_dir <> None then
      Obs.set_enabled true;
    arm_chaos chaos;
    let jobs = resolve_jobs jobs in
    let spec = or_die (read_spec spec_path) in
    let cache = open_cache cache_dir in
    let supervision = supervision_of ~task_retries ~task_backoff in
    let result =
      Hydra_core.Pipeline.regenerate ?deadline_s ~max_nodes ~jobs ?cache
        ?state_dir ~supervision ~solve_mode
        spec.Hydra_workload.Cc_parser.schema
        spec.Hydra_workload.Cc_parser.ccs
    in
    let summary = result.Hydra_core.Pipeline.summary in
    Hydra_core.Summary.save out summary;
    (* resource gauges (RSS, GC words) land in the --report table, the
       metrics snapshot and the ledger record even without a sampler
       running; one post-run sample is enough for a batch run *)
    if Obs.enabled () then Resource.sample ();
    (* audited validation runs against the dynamic generator: the same
       tuples materialization would produce, with no storage and no
       jobs-dependence, so the report is byte-identical across --jobs *)
    let audit =
      match audit_out with
      | None -> None
      | Some path ->
          let db = Hydra_core.Tuple_gen.dynamic summary in
          let _, records, reconciles =
            run_audit db spec.Hydra_workload.Cc_parser.ccs
          in
          let incidents = audit_incidents () in
          Hydra_audit.Audit.write_report ~reconciles ~incidents path records;
          Some (records, reconciles, path)
    in
    if json then begin
      let audit_json =
        Option.map
          (fun (records, reconciles, _) ->
            Hydra_audit.Audit.report_json ~reconciles
              ~incidents:(audit_incidents ()) records)
          audit
      in
      print_endline
        (Json.to_string_pretty
           (run_report_json ?audit:audit_json ?cache ~jobs out result))
    end
    else begin
      Printf.printf "summary: %d rows covering %d tuples -> %s (%.2fs)\n"
        (Hydra_core.Summary.summary_rows summary)
        (Hydra_core.Summary.total_rows summary)
        out result.Hydra_core.Pipeline.total_seconds;
      List.iter
        (fun (v : Hydra_core.Pipeline.view_stats) ->
          Printf.printf "  view %-20s %6d LP vars %5d constraints %.2fs  %s%s\n"
            v.Hydra_core.Pipeline.rel v.Hydra_core.Pipeline.num_lp_vars
            v.Hydra_core.Pipeline.num_lp_constraints
            v.Hydra_core.Pipeline.solve_seconds (status_line v)
            ((match v.Hydra_core.Pipeline.journal with
             | Hydra_core.Formulate.Cache_hit -> " [replayed]"
             | _ -> "")
            ^ (match v.Hydra_core.Pipeline.cache with
              | Hydra_core.Formulate.Cache_hit -> " [cached]"
              | _ -> "")
            ^
            if v.Hydra_core.Pipeline.attempts > 1 then
              Printf.sprintf " [%d attempts]" v.Hydra_core.Pipeline.attempts
            else "");
          match v.Hydra_core.Pipeline.status with
          | Hydra_core.Pipeline.Relaxed vs ->
              List.iter
                (fun (viol : Hydra_core.Pipeline.violation) ->
                  Printf.printf "    violated: %s expected %d achieved %d\n"
                    (Hydra_rel.Predicate.to_string
                       viol.Hydra_core.Pipeline.v_pred)
                    viol.Hydra_core.Pipeline.v_expected
                    viol.Hydra_core.Pipeline.v_achieved)
                vs
          | _ -> ())
        result.Hydra_core.Pipeline.views;
      List.iter
        (fun note -> Printf.printf "  note: %s\n" note)
        result.Hydra_core.Pipeline.diagnostics.Hydra_core.Pipeline.notes;
      List.iter
        (fun (r, n) ->
          if n > 0 then
            Printf.printf "  +%d integrity-repair tuples in %s\n" n r)
        summary.Hydra_core.Summary.extra_tuples;
      (match cache with
      | Some c ->
          let s = Hydra_cache.Cache.stats c in
          Printf.printf "  cache: %d hit%s, %d miss%s, %d store%s -> %s\n"
            s.Hydra_cache.Cache.hits
            (if s.Hydra_cache.Cache.hits = 1 then "" else "s")
            s.Hydra_cache.Cache.misses
            (if s.Hydra_cache.Cache.misses = 1 then "" else "es")
            s.Hydra_cache.Cache.stores
            (if s.Hydra_cache.Cache.stores = 1 then "" else "s")
            (Hydra_cache.Cache.dir c)
      | None -> ());
      match audit with
      | Some (records, reconciles, path) ->
          print_audit_line records reconciles path
      | None -> ()
    end;
    if report && not json then print_metrics_report ?cache ~result ();
    let d = result.Hydra_core.Pipeline.diagnostics in
    let exit_code =
      if d.Hydra_core.Pipeline.fallback_views > 0 then 4
      else if d.Hydra_core.Pipeline.relaxed_views > 0 then 3
      else 0
    in
    (match obs_dir with
    | Some dir ->
        record_obs_run ~dir ~subcommand:"summary" ~spec_path ~jobs
          ~exit_code ~collector ~state_dir result
    | None -> ());
    (* with --serve attached, keep the final state scrapeable until the
       operator (or the test harness) sends SIGTERM *)
    serve_linger ();
    if exit_code <> 0 then exit exit_code
  in
  let doc = "Build a database summary from a schema + CC spec." in
  Cmd.v (Cmd.info "summary" ~doc)
    Term.(
      const (fun a b c d e f g h i j k l m n o p q r s t u ->
          protecting (run a b c d e f g h i j k l m n o p q r s t) u)
      $ spec_arg $ out $ deadline $ max_nodes $ jobs_arg $ cache_dir_arg
      $ state_dir_arg $ chaos_arg $ solve_mode_arg $ task_retries_arg
      $ task_backoff_arg $ trace_arg $ metrics_out_arg $ audit_out_arg
      $ flame_out_arg $ chrome_out_arg $ obs_dir_arg $ progress_arg
      $ serve_arg $ report $ json)

(* ---- materialize ---- *)

let materialize_cmd =
  let dir =
    Arg.(
      value & opt string "."
      & info [ "d"; "dir" ] ~docv:"DIR" ~doc:"Output directory for CSVs.")
  in
  let run spec_path summary_path dir jobs =
    let jobs = resolve_jobs jobs in
    let spec = or_die (read_spec spec_path) in
    let summary =
      Hydra_core.Summary.load summary_path spec.Hydra_workload.Cc_parser.schema
    in
    let t0 = Mclock.now () in
    let db = Hydra_core.Tuple_gen.materialize ~jobs summary in
    List.iter
      (fun rname ->
        match Hydra_engine.Database.source db rname with
        | Hydra_engine.Database.Stored table ->
            let path = Filename.concat dir (rname ^ ".csv") in
            Hydra_rel.Csv.write_table path table;
            Printf.printf "%s: %d rows -> %s\n" rname
              (Hydra_rel.Table.length table)
              path
        | Hydra_engine.Database.Generated _ -> ())
      (Hydra_engine.Database.relation_names db);
    Printf.printf "materialized in %.2fs\n" (Mclock.now () -. t0)
  in
  let doc = "Materialize a summary into CSV relations." in
  Cmd.v
    (Cmd.info "materialize" ~doc)
    Term.(
      const (fun a b c d -> protecting (run a b c) d)
      $ spec_arg $ summary_pos_arg $ dir $ jobs_arg)

(* ---- validate ---- *)

let validate_cmd =
  let dynamic =
    Arg.(
      value & flag
      & info [ "dynamic" ]
          ~doc:
            "Execute against the dynamic tuple generator instead of \
             materialized tables.")
  in
  let run spec_path summary_path dynamic jobs trace metrics_out audit_out
      flame_out chrome_out =
    setup_obs trace metrics_out;
    ignore (setup_span_exports flame_out chrome_out);
    if audit_out <> None then Obs.set_enabled true;
    let jobs = resolve_jobs jobs in
    let spec = or_die (read_spec spec_path) in
    let summary =
      Hydra_core.Summary.load summary_path spec.Hydra_workload.Cc_parser.schema
    in
    let db =
      if dynamic then Hydra_core.Tuple_gen.dynamic summary
      else Hydra_core.Tuple_gen.materialize ~jobs summary
    in
    let v =
      match audit_out with
      | None ->
          Hydra_core.Validate.check db spec.Hydra_workload.Cc_parser.ccs
      | Some path ->
          let v, records, reconciles =
            run_audit db spec.Hydra_workload.Cc_parser.ccs
          in
          Hydra_audit.Audit.write_report ~reconciles
            ~incidents:(audit_incidents ()) path records;
          print_audit_line records reconciles path;
          v
    in
    Format.printf "%a@." Hydra_core.Validate.pp v;
    List.iter
      (fun (rr : Hydra_core.Validate.relation_report) ->
        Format.printf "  %-24s %3d/%-3d exact, max |err| %.2f%%@."
          (String.concat "," rr.Hydra_core.Validate.rr_rels)
          rr.Hydra_core.Validate.rr_exact rr.Hydra_core.Validate.rr_ccs
          (100.0 *. rr.Hydra_core.Validate.rr_max_abs_error))
      (Hydra_core.Validate.by_relation v);
    List.iter
      (fun (r : Hydra_core.Validate.cc_report) ->
        if r.Hydra_core.Validate.rel_error <> 0.0 then
          Format.printf "  %+.2f%%  %a (got %d)@."
            (100.0 *. r.Hydra_core.Validate.rel_error)
            Hydra_workload.Cc.pp r.Hydra_core.Validate.cc
            r.Hydra_core.Validate.actual)
      (Hydra_core.Validate.worst v 10);
    if v.Hydra_core.Validate.max_abs_error > 0.5 then exit 2
  in
  let doc = "Check volumetric similarity of a summary against its CCs." in
  Cmd.v
    (Cmd.info "validate" ~doc)
    Term.(
      const (fun a b c d e f g h i -> protecting (run a b c d e f g h) i)
      $ spec_arg $ summary_pos_arg $ dynamic $ jobs_arg $ trace_arg
      $ metrics_out_arg $ audit_out_arg $ flame_out_arg $ chrome_out_arg)

(* ---- extract (the client-site flow of Fig. 2) ---- *)

let extract_cmd =
  let data_dir =
    Arg.(
      required
      & opt (some dir) None
      & info [ "data" ] ~docv:"DIR"
          ~doc:"Directory with one <relation>.csv per declared table.")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Write the CC spec here instead of stdout.")
  in
  let run spec_path data_dir out jobs =
    let jobs = resolve_jobs jobs in
    let spec = or_die (read_spec spec_path) in
    if spec.Hydra_workload.Cc_parser.queries = [] then
      or_die (Error "extract: the spec declares no queries");
    let schema = spec.Hydra_workload.Cc_parser.schema in
    (* client database from CSVs *)
    let db = Hydra_engine.Database.create schema in
    List.iter
      (fun (r : Hydra_rel.Schema.relation) ->
        let path =
          Filename.concat data_dir (r.Hydra_rel.Schema.rname ^ ".csv")
        in
        Hydra_engine.Database.bind_table db
          (Hydra_rel.Csv.read_table path r.Hydra_rel.Schema.rname))
      (Hydra_rel.Schema.relations schema);
    (* execute the workload: AQPs -> CCs, plus size CCs for unscanned
       relations so the spec is self-contained *)
    let wl =
      Hydra_workload.Workload.create spec.Hydra_workload.Cc_parser.queries
    in
    let ccs = Hydra_workload.Workload.extract_ccs ~jobs db wl in
    let sizes =
      List.map
        (fun (r : Hydra_rel.Schema.relation) ->
          let rname = r.Hydra_rel.Schema.rname in
          (rname, Hydra_engine.Database.nrows db rname))
        (Hydra_rel.Schema.relations schema)
    in
    let ccs = Hydra_core.Pipeline.complete_size_ccs schema ccs sizes in
    let text = Hydra_workload.Cc_parser.emit schema ccs in
    (match out with
    | Some path ->
        let oc = open_out path in
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () -> output_string oc text);
        Printf.printf "extracted %d CCs from %d queries -> %s\n"
          (List.length ccs)
          (List.length spec.Hydra_workload.Cc_parser.queries)
          path
    | None -> print_string text)
  in
  let doc =
    "Run the spec's queries against CSV data and emit the cardinality \
     constraints (the client-site flow)."
  in
  Cmd.v (Cmd.info "extract" ~doc)
    Term.(
      const (fun a b c d -> protecting (run a b c) d)
      $ spec_arg $ data_dir $ out $ jobs_arg)

(* ---- cache maintenance ---- *)

let cache_scrub_cmd =
  let delete =
    Arg.(
      value & flag
      & info [ "delete" ]
          ~doc:"Remove every corrupt or version-mismatched entry found.")
  in
  let run cache_dir delete =
    let dir =
      match cache_dir with
      | Some d -> d
      | None ->
          or_die (Error "cache scrub: --cache-dir (or HYDRA_CACHE) is required")
    in
    let r = Hydra_cache.Cache.scrub ~delete ~dir () in
    let report label entries =
      List.iter
        (fun (b : Hydra_cache.Cache.bad_entry) ->
          Printf.printf "  %s: %s (%s)%s\n" label b.Hydra_cache.Cache.be_file
            b.Hydra_cache.Cache.be_problem
            (if delete then " [deleted]" else ""))
        entries
    in
    report "bad" r.Hydra_cache.Cache.sr_bad;
    report "stale" r.Hydra_cache.Cache.sr_stale;
    Printf.printf
      "cache scrub: %d entries, %d ok, %d bad, %d stale, %d deleted -> %s\n"
      r.Hydra_cache.Cache.sr_total r.Hydra_cache.Cache.sr_ok
      (List.length r.Hydra_cache.Cache.sr_bad)
      (List.length r.Hydra_cache.Cache.sr_stale)
      r.Hydra_cache.Cache.sr_deleted dir;
    (* corrupt entries left behind signal scripts to re-run with
       --delete; stale ones are the expected debris of a format-version
       upgrade and never fail the walk *)
    if r.Hydra_cache.Cache.sr_bad <> [] && not delete then exit 2
  in
  let doc =
    "Walk a solve-cache directory, report corrupt (exit 2 unless \
     $(b,--delete)) and stale version-mismatched entries (silent misses \
     otherwise), and optionally delete them."
  in
  Cmd.v (Cmd.info "scrub" ~doc)
    Term.(
      const (fun a b -> protecting (run a) b) $ cache_dir_arg $ delete)

let cache_cmd =
  let doc = "Solve-cache maintenance." in
  Cmd.group (Cmd.info "cache" ~doc) [ cache_scrub_cmd ]

(* ---- obs: run-ledger analysis ---- *)

let require_obs_dir = function
  | Some d -> d
  | None -> or_die (Error "obs: --obs-dir (or HYDRA_OBS_DIR) is required")

let run_ref_arg idx docv =
  let doc =
    "Ledger run reference: a sequence number (e.g. $(b,2)), a full run \
     id, or an unambiguous id prefix."
  in
  Arg.(required & pos idx (some string) None & info [] ~docv ~doc)

let doc_str doc name =
  match Json.member name doc with Some (Json.String s) -> s | _ -> ""

let doc_int doc name =
  match Json.member name doc with Some (Json.Int i) -> i | _ -> 0

let doc_float doc name =
  match Json.member name doc with
  | Some (Json.Float f) -> f
  | Some (Json.Int i) -> float_of_int i
  | _ -> 0.0

let doc_list doc name =
  match Json.member name doc with Some (Json.List l) -> l | _ -> []

(* exact/relaxed/fallback tally of a run document's views *)
let rung_tally doc =
  List.fold_left
    (fun (e, r, f) v ->
      match doc_str v "status" with
      | "exact" -> (e + 1, r, f)
      | "relaxed" -> (e, r + 1, f)
      | "fallback" -> (e, r, f + 1)
      | _ -> (e, r, f))
    (0, 0, 0) (doc_list doc "views")

(* resource metrics carry wall-clock time or process state (RSS, GC
   words), so they are only gated by an explicit per-metric threshold,
   never by --default-threshold *)
let resource_metric k =
  let ends suffix = String.ends_with ~suffix k in
  ends ".seconds" || ends ".sum" || ends ".p50" || ends ".p95"
  || ends ".p99" || ends "_bytes" || ends "_words"

let obs_list_cmd =
  let run obs_dir =
    let dir = require_obs_dir obs_dir in
    let l = Ledger.runs ~dir in
    List.iter
      (fun (e : Ledger.entry) ->
        let ex, rx, fb = rung_tally e.Ledger.e_doc in
        Printf.printf "%s  %-10s jobs %-3d exit %d  views %d/%d/%d\n"
          e.Ledger.e_id
          (doc_str e.Ledger.e_doc "subcommand")
          (doc_int e.Ledger.e_doc "jobs")
          (doc_int e.Ledger.e_doc "exit")
          ex rx fb)
      l.Ledger.l_entries;
    List.iter
      (fun (fn, reason) -> Printf.printf "  corrupt: %s (%s)\n" fn reason)
      l.Ledger.l_corrupt;
    Printf.printf "%d run(s)%s -> %s\n"
      (List.length l.Ledger.l_entries)
      (match l.Ledger.l_corrupt with
      | [] -> ""
      | c -> Printf.sprintf ", %d corrupt skipped" (List.length c))
      dir
  in
  let doc =
    "List the archived runs of a ledger directory (views column is \
     exact/relaxed/fallback); corrupt records are reported and skipped."
  in
  Cmd.v (Cmd.info "list" ~doc)
    Term.(const (fun a -> protecting run a) $ obs_dir_arg)

let obs_show_cmd =
  let events_n =
    Arg.(
      value & opt int 10
      & info [ "events" ] ~docv:"N"
          ~doc:"Show the last $(docv) archived events (0 hides them).")
  in
  let run obs_dir ref_ events_n =
    let dir = require_obs_dir obs_dir in
    let e = or_die (Ledger.find ~dir ref_) in
    let doc = e.Ledger.e_doc in
    let ex, rx, fb = rung_tally doc in
    Printf.printf "run %s\n" e.Ledger.e_id;
    Printf.printf "  subcommand    %s\n" (doc_str doc "subcommand");
    Printf.printf "  config digest %s\n" (doc_str doc "config_digest");
    Printf.printf "  spec digest   %s\n" (doc_str doc "spec_digest");
    Printf.printf "  jobs          %d\n" (doc_int doc "jobs");
    Printf.printf "  exit          %d\n" (doc_int doc "exit");
    Printf.printf "  seconds       %.6f\n" (doc_float doc "seconds");
    Printf.printf "  views         %d exact, %d relaxed, %d fallback\n" ex rx
      fb;
    List.iter
      (fun v ->
        let fp = doc_str v "fingerprint" in
        let fp = if fp = "" then "-" else String.sub fp 0 (min 12 (String.length fp)) in
        Printf.printf "    %-20s %-8s cache %-6s journal %-8s lp %s  %.6fs\n"
          (doc_str v "rel") (doc_str v "status") (doc_str v "cache")
          (doc_str v "journal") fp (doc_float v "seconds"))
      (doc_list doc "views");
    (match Json.member "journal" doc with
    | Some (Json.Obj (_ :: _ as fields)) ->
        Printf.printf "  journal       %s\n"
          (String.concat ", "
             (List.map
                (fun (k, v) ->
                  Printf.sprintf "%d %s"
                    (match v with Json.Int i -> i | _ -> 0)
                    k)
                fields))
    | _ -> ());
    let kvs = Ledger.metric_kvs doc in
    if kvs <> [] then begin
      print_string "  metrics:\n";
      List.iter
        (fun (k, v) ->
          if Float.is_integer v && Float.abs v < 1e15 then
            Printf.printf "    %-44s %d\n" k (int_of_float v)
          else Printf.printf "    %-44s %.6f\n" k v)
        kvs
    end;
    if events_n > 0 then begin
      let evs = doc_list doc "events" in
      let skip = max 0 (List.length evs - events_n) in
      let evs = List.filteri (fun i _ -> i >= skip) evs in
      if evs <> [] then begin
        print_string "  events:\n";
        List.iter
          (fun ev ->
            Printf.printf "    [%s] %s\n" (doc_str ev "level")
              (doc_str ev "msg"))
          evs
      end
    end
  in
  let doc = "Render one archived run's full report." in
  Cmd.v (Cmd.info "show" ~doc)
    Term.(
      const (fun a b c -> protecting (run a b) c)
      $ obs_dir_arg
      $ run_ref_arg 0 "RUN"
      $ events_n)

let obs_diff_cmd =
  let thresholds =
    Arg.(
      value
      & opt_all (pair ~sep:'=' string float) []
      & info [ "threshold" ] ~docv:"METRIC=RATIO"
          ~doc:
            "Gate $(i,METRIC): fail when the second run's value exceeds \
             $(i,RATIO) times the first run's. Repeatable; explicit \
             thresholds also gate time-based metrics.")
  in
  let default_threshold =
    Arg.(
      value
      & opt (some float) None
      & info [ "default-threshold" ] ~docv:"RATIO"
          ~doc:
            "Gate every deterministic metric (counters, gauges, span and \
             histogram counts — everything except wall-clock seconds, \
             sums, percentiles and the process/GC resource gauges) at \
             $(i,RATIO). $(b,1.0) means: no deterministic metric may \
             grow at all.")
  in
  let verbose =
    Arg.(
      value & flag
      & info [ "v"; "verbose" ] ~doc:"Print every changed metric.")
  in
  let run obs_dir a_ref b_ref thresholds default_threshold verbose =
    (* a zero, negative or non-finite ratio would make every metric (or
       none) a regression; reject it as a usage error before touching
       the ledger *)
    let check_ratio label r =
      if not (Float.is_finite r) || r <= 0.0 then
        or_die
          (Error
             (Printf.sprintf
                "obs diff: %s: ratio must be a finite positive number" label))
    in
    List.iter
      (fun (n, r) ->
        check_ratio (Printf.sprintf "--threshold %s=%g" n r) r)
      thresholds;
    Option.iter
      (fun r -> check_ratio (Printf.sprintf "--default-threshold %g" r) r)
      default_threshold;
    (* a repeated --threshold for one metric: the last occurrence wins,
       matching how flags usually override earlier ones *)
    let thresholds = List.rev thresholds in
    let dir = require_obs_dir obs_dir in
    let ea = or_die (Ledger.find ~dir a_ref) in
    let eb = or_die (Ledger.find ~dir b_ref) in
    let ka = Ledger.metric_kvs ea.Ledger.e_doc in
    let kb = Ledger.metric_kvs eb.Ledger.e_doc in
    let names = List.sort_uniq compare (List.map fst ka @ List.map fst kb) in
    let value l n = Option.value ~default:0.0 (List.assoc_opt n l) in
    let eps = 1e-9 in
    let regressions = ref [] in
    List.iter
      (fun name ->
        let before = value ka name and after = value kb name in
        if verbose && before <> after then
          Printf.printf "  %-44s %g -> %g\n" name before after;
        let threshold =
          match List.assoc_opt name thresholds with
          | Some r -> Some r
          | None -> if resource_metric name then None else default_threshold
        in
        match threshold with
        | Some r when after > (r *. before) +. eps ->
            regressions := (name, before, after, r) :: !regressions
        | _ -> ())
      names;
    List.iter
      (fun (n, b, a, r) ->
        Printf.printf "REGRESSION %-36s %g -> %g (threshold %gx)\n" n b a r)
      (List.rev !regressions);
    Printf.printf "diff %s .. %s: %d metric(s) compared, %d regression(s)\n"
      ea.Ledger.e_id eb.Ledger.e_id (List.length names)
      (List.length !regressions);
    (* non-zero so CI pipelines can gate on a run-over-run regression *)
    if !regressions <> [] then exit 5
  in
  let doc =
    "Diff two archived runs' metrics and percentiles; exits 5 when a \
     gated metric regressed (grew past its threshold ratio)."
  in
  Cmd.v (Cmd.info "diff" ~doc)
    Term.(
      const (fun a b c d e f -> protecting (run a b c d e) f)
      $ obs_dir_arg
      $ run_ref_arg 0 "RUN_A"
      $ run_ref_arg 1 "RUN_B"
      $ thresholds $ default_threshold $ verbose)

let obs_top_cmd =
  let top_n =
    Arg.(
      value & opt int 10
      & info [ "n" ] ~docv:"N" ~doc:"Entries per ranking (default 10).")
  in
  let run obs_dir ref_ top_n =
    let dir = require_obs_dir obs_dir in
    let e = or_die (Ledger.find ~dir ref_) in
    let kvs = Ledger.metric_kvs e.Ledger.e_doc in
    let take n l = List.filteri (fun i _ -> i < n) l in
    let desc (_, a) (_, b) = compare (b : float) a in
    let spans =
      List.filter_map
        (fun (k, v) ->
          if
            String.starts_with ~prefix:"span." k
            && String.ends_with ~suffix:".seconds" k
          then Some (String.sub k 5 (String.length k - 13), v)
          else None)
        kvs
    in
    Printf.printf "slowest spans of %s:\n" e.Ledger.e_id;
    List.iter
      (fun (k, v) -> Printf.printf "  %-28s %.6fs\n" k v)
      (take top_n (List.sort desc spans));
    let views =
      List.map
        (fun v -> ((doc_str v "rel", doc_str v "status"), doc_float v "seconds"))
        (doc_list e.Ledger.e_doc "views")
    in
    print_string "slowest views:\n";
    List.iter
      (fun ((rel, status), v) ->
        Printf.printf "  %-20s %-8s %.6fs\n" rel status v)
      (take top_n (List.sort desc views))
  in
  let doc = "Rank an archived run's slowest spans and views." in
  Cmd.v (Cmd.info "top" ~doc)
    Term.(
      const (fun a b c -> protecting (run a b) c)
      $ obs_dir_arg
      $ run_ref_arg 0 "RUN"
      $ top_n)

let obs_prune_cmd =
  let keep =
    Arg.(
      value
      & opt (some int) None
      & info [ "keep" ] ~docv:"N" ~doc:"Keep only the newest $(docv) runs.")
  in
  let before =
    Arg.(
      value
      & opt (some int) None
      & info [ "before" ] ~docv:"SEQ"
          ~doc:"Delete every run with a sequence number below $(docv).")
  in
  let run obs_dir keep before =
    let dir = require_obs_dir obs_dir in
    (match (keep, before) with
    | Some k, _ when k < 0 -> or_die (Error "obs prune: --keep must be >= 0")
    | _ -> ());
    let removed, corrupt =
      Ledger.prune ~dir ?before ?keep ()
    in
    List.iter (fun id -> Printf.printf "  pruned: %s\n" id) removed;
    List.iter
      (fun fn -> Printf.printf "  removed corrupt: %s\n" fn)
      corrupt;
    Printf.printf "obs prune: %d run(s), %d corrupt file(s) removed -> %s\n"
      (List.length removed) (List.length corrupt) dir
  in
  let doc =
    "Delete archived runs by age ($(b,--before) a sequence number) \
     and/or count ($(b,--keep) the newest N); corrupt record files are \
     always removed."
  in
  Cmd.v (Cmd.info "prune" ~doc)
    Term.(
      const (fun a b c -> protecting (run a b) c)
      $ obs_dir_arg $ keep $ before)

let obs_serve_cmd =
  let port =
    Arg.(
      value & opt int 0
      & info [ "port" ] ~docv:"PORT"
          ~doc:
            "TCP port on 127.0.0.1; $(b,0) (the default) picks an \
             ephemeral port. The bound port is printed on startup.")
  in
  let run obs_dir port =
    let dir = require_obs_dir obs_dir in
    match Serve.start ~obs_dir:dir ~port () with
    | Error m -> or_die (Error ("obs serve: " ^ m))
    | Ok s ->
        Printf.printf "obs serve: listening on http://127.0.0.1:%d (ledger %s)\n%!"
          (Serve.port s) dir;
        wait_for_shutdown ();
        Serve.stop s
  in
  let doc =
    "Serve an archived run ledger over HTTP: $(b,/healthz), \
     $(b,/metrics) (latest run as Prometheus text), $(b,/progress), \
     $(b,/runs), $(b,/runs/ID). Runs until SIGTERM/SIGINT; a busy port \
     is a clean error (exit 1), not a backtrace."
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(const (fun a b -> protecting (run a) b) $ obs_dir_arg $ port)

let obs_get_cmd =
  let port =
    Arg.(
      required
      & opt (some int) None
      & info [ "port" ] ~docv:"PORT" ~doc:"TCP port of the endpoint.")
  in
  let host =
    Arg.(
      value & opt string "127.0.0.1"
      & info [ "host" ] ~docv:"HOST" ~doc:"Endpoint host.")
  in
  let path =
    Arg.(
      value & pos 0 string "/healthz"
      & info [] ~docv:"PATH" ~doc:"Request path (default /healthz).")
  in
  let run host port path =
    match Hydra_net.Client.get ~host ~port path with
    | Error m -> or_die (Error ("obs get: " ^ m))
    | Ok (status, body) ->
        print_string body;
        if status < 200 || status > 299 then begin
          flush stdout;
          Printf.eprintf "hydra: obs get %s: HTTP %d %s\n%!" path status
            (Hydra_net.Http.reason status);
          exit 7
        end
  in
  let doc =
    "Scrape one path from a telemetry endpoint (a $(b,--serve) run or \
     $(b,hydra obs serve)) and print the body — a built-in, \
     curl-independent client for tests and CI. Non-2xx responses print \
     the body, report the status on stderr and exit 7."
  in
  Cmd.v (Cmd.info "get" ~doc)
    Term.(const (fun a b c -> protecting (run a b) c) $ host $ port $ path)

let obs_cmd =
  let doc =
    "Analyze the run telemetry ledger (list, show, diff, top, prune) or \
     serve it live (serve, get)."
  in
  Cmd.group (Cmd.info "obs" ~doc)
    [
      obs_list_cmd; obs_show_cmd; obs_diff_cmd; obs_top_cmd; obs_prune_cmd;
      obs_serve_cmd; obs_get_cmd;
    ]

(* ---- fuzz ---- *)

let fuzz_cmd =
  let open Hydra_synth in
  let seed_arg =
    Arg.(
      value & opt int 0
      & info [ "seed" ] ~docv:"S"
          ~doc:
            "Sweep seed. Workload $(i,i) of the sweep is synthesized from \
             the derived seed $(b,mix2)(S, i), so its identity is \
             independent of $(b,--count); equal seeds produce \
             byte-identical workload specs and pipeline outputs.")
  in
  let count_arg =
    Arg.(
      value & opt int 25
      & info [ "count" ] ~docv:"N"
          ~doc:"Number of workloads to synthesize and fuzz (default 25).")
  in
  let out_arg =
    Arg.(
      value
      & opt string "fuzz-reproducers"
      & info [ "out" ] ~docv:"DIR"
          ~doc:
            "Directory for minimal reproducer specs (created on first \
             failure; untouched otherwise). Each failure writes \
             $(docv)/fuzz-<seed>-w<index>.hydra, replayable with \
             $(b,--replay).")
  in
  let replay_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "replay" ] ~docv:"SPEC"
          ~doc:
            "Skip synthesis and run the invariant battery on the schema \
             and CCs of $(docv) — a reproducer written by a previous fuzz \
             run, or any hand-written spec.")
  in
  let shape_arg =
    Arg.(
      value & opt string "mixed"
      & info [ "shape" ] ~docv:"SHAPE"
          ~doc:
            "Join-shape template: $(b,star), $(b,snowflake), $(b,chain), \
             or $(b,mixed) (drawn per seed; default).")
  in
  let knob name default doc =
    Arg.(value & opt int default & info [ name ] ~docv:"N" ~doc)
  in
  let d = Synth.default_config in
  let relations_arg =
    knob "relations" d.Synth.max_relations
      "Upper bound on relations per schema (fact/chain head included)."
  in
  let queries_arg =
    knob "queries" d.Synth.max_queries "Upper bound on queries per workload."
  in
  let fact_rows_arg =
    knob "fact-rows" d.Synth.max_fact_rows
      "Upper bound on client-side fact rows — against the fixed attribute \
       domains this sets the fact-grid/region pressure."
  in
  let filter_width_arg =
    knob "filter-width" d.Synth.max_filter_width
      "Widest generated range atom."
  in
  let or_arms_arg =
    knob "or-arms" d.Synth.max_or_arms
      "Upper bound on disjuncts per OR-heavy predicate."
  in
  let group_pct_arg =
    knob "group-pct" d.Synth.group_by_pct
      "Chance (0-100) a query aggregates (distinct-count head)."
  in
  let scale_arg =
    knob "max-scale" d.Synth.max_scale
      "Upper bound on the integer CODD scale factor applied after \
       measurement."
  in
  let config shape relations queries fact_rows filter_width or_arms group_pct
      scale =
    let shape = or_die (Synth.shape_of_string shape) in
    let pos name v =
      if v < 1 then
        invalid_arg (Printf.sprintf "--%s must be at least 1 (got %d)" name v)
    in
    pos "relations" relations;
    pos "queries" queries;
    pos "fact-rows" fact_rows;
    pos "filter-width" filter_width;
    pos "or-arms" or_arms;
    pos "max-scale" scale;
    if group_pct < 0 || group_pct > 100 then
      invalid_arg
        (Printf.sprintf "--group-pct must be in 0..100 (got %d)" group_pct);
    {
      d with
      Synth.shape;
      max_relations = relations;
      max_queries = queries;
      max_fact_rows = fact_rows;
      max_filter_width = filter_width;
      max_or_arms = or_arms;
      group_by_pct = group_pct;
      max_scale = scale;
    }
  in
  let run seed count out replay shape relations queries fact_rows filter_width
      or_arms group_pct scale solve_mode =
    match replay with
    | Some path ->
        Fuzz.with_tmp_root ~prefix:"hydra-fuzz" (fun tmp_root ->
            match Fuzz.replay ~solve_mode ~tmp_root ~path () with
            | Ok digest -> Printf.printf "replay %s: ok digest=%s\n" path digest
            | Error f ->
                Printf.printf "replay %s: FAIL %s: %s\n" path f.Fuzz.f_invariant
                  f.Fuzz.f_detail;
                exit 6)
    | None ->
        let cfg =
          config shape relations queries fact_rows filter_width or_arms
            group_pct scale
        in
        if count < 1 then invalid_arg "--count must be at least 1";
        let sweep =
          Fuzz.with_tmp_root ~prefix:"hydra-fuzz" (fun tmp_root ->
              Fuzz.run_sweep ~config:cfg ~solve_mode ~out_dir:out ~tmp_root
                ~seed ~count ~emit:print_endline ())
        in
        Printf.printf "fuzz: %d/%d workload(s) passed (seed %d)\n"
          sweep.Fuzz.sw_passed count seed;
        if sweep.Fuzz.sw_failures <> [] then exit 6
  in
  let doc =
    "Synthesize seeded random workloads and fuzz the whole pipeline end to \
     end: per workload, assert that regeneration never raises, the summary \
     round-trips save/load, output is byte-identical across $(b,--jobs), \
     across LP engines ($(b,--solve-mode) and its opposite), cache-warm \
     and journal-resume replays, audited validation reconciles, and \
     fully-exact runs validate with zero error. Failures shrink to a \
     minimal reproducer spec (exit 6)."
  in
  Cmd.v (Cmd.info "fuzz" ~doc)
    Term.(
      const (fun a b c dd e f g h i j k l m ->
          protecting (run a b c dd e f g h i j k l) m)
      $ seed_arg $ count_arg $ out_arg $ replay_arg $ shape_arg $ relations_arg
      $ queries_arg $ fact_rows_arg $ filter_width_arg $ or_arms_arg
      $ group_pct_arg $ scale_arg $ solve_mode_arg)

(* ---- inspect ---- *)

let inspect_cmd =
  let run spec_path summary_path =
    let spec = or_die (read_spec spec_path) in
    let summary =
      Hydra_core.Summary.load summary_path spec.Hydra_workload.Cc_parser.schema
    in
    Format.printf "%a" Hydra_core.Summary.pp summary
  in
  let doc = "Print the relation summaries contained in a summary file." in
  Cmd.v (Cmd.info "inspect" ~doc)
    Term.(const (fun a b -> protecting (run a) b) $ spec_arg $ summary_pos_arg)

let main =
  let doc = "workload-dependent database regeneration (HYDRA, EDBT 2018)" in
  Cmd.group
    (Cmd.info "hydra" ~version:"1.0.0" ~doc)
    [
      summary_cmd; extract_cmd; materialize_cmd; validate_cmd; inspect_cmd;
      cache_cmd; obs_cmd; fuzz_cmd;
    ]

let () =
  Obs.init_from_env ();
  (* HYDRA_OBS progress=N starts the live exporter even for subcommands
     without a --progress flag; HYDRA_OBS_DIR routes metrics.prom there *)
  (match Progress.period_from_env () with
  | Some p -> start_progress ?obs_dir:(Sys.getenv_opt "HYDRA_OBS_DIR") p
  | None -> ());
  (* HYDRA_OBS serve=PORT attaches the live endpoint to any subcommand;
     no span collector exists this early, so /runs/current/trace is
     only populated by the --serve flag *)
  (match Serve.port_from_env () with
  | Some port ->
      start_live_serve ?obs_dir:(Sys.getenv_opt "HYDRA_OBS_DIR") port
  | None -> ());
  (* HYDRA_CHAOS arms fault injection for every subcommand, including
     those without a --chaos flag (e.g. materialize) *)
  Chaos.init_from_env ();
  (* metrics files must land even on the degraded-summary exit codes *)
  at_exit Obs.finish;
  let code = Cmd.eval main in
  (* env-attached endpoints on subcommands without their own linger
     call (everything but summary) keep the final state up here *)
  serve_linger ();
  exit code
