(* A query workload and the client-side extraction pipeline: execute each
   query plan to obtain its annotated query plan (AQP), then convert the
   AQPs into a deduplicated set of cardinality constraints. *)

open Hydra_rel
open Hydra_engine
module Pool = Hydra_par.Pool

type query = { qname : string; plan : Plan.t }
type t = { queries : query list }

let create queries = { queries }
let queries t = t.queries
let num_queries t = List.length t.queries

(* Harvesting walks a plan and its AQP annotation in lockstep; the two
   trees must be congruent. An annotation whose child arity disagrees
   with its operator is a malformed AQP (hand-built, corrupted in
   transit, or produced by a foreign executor), and it must surface as a
   typed, per-query fault the pipeline can isolate — not an assertion
   crash that kills the whole extraction. *)
type harvest_fault = { hf_op : string; hf_expected : int; hf_got : int }

exception Harvest_error of harvest_fault

let harvest_fault_message f =
  Printf.sprintf
    "malformed annotated plan: %s node carries %d child annotation%s, \
     expected %d"
    f.hf_op f.hf_got
    (if f.hf_got = 1 then "" else "s")
    f.hf_expected

let () =
  Printexc.register_printer (function
    | Harvest_error f -> Some ("Harvest_error: " ^ harvest_fault_message f)
    | _ -> None)

let harvest_children op expected (ann : Executor.annotated) =
  let got = List.length ann.Executor.children in
  if got <> expected then
    raise (Harvest_error { hf_op = op; hf_expected = expected; hf_got = got });
  ann.Executor.children

(* Convert one plan with its measured cardinalities into CCs: every
   operator output edge contributes one constraint (Fig. 1d). The walk
   carries the relation set and the conjunction of filter predicates seen
   so far in the subtree. *)
let rec ccs_of_node plan (ann : Executor.annotated) =
  match plan with
  | Plan.Scan r ->
      ignore (harvest_children "Scan" 0 ann);
      let cc = Cc.make [ r ] Predicate.true_ ann.Executor.card in
      ([ r ], Predicate.true_, [ cc ])
  | Plan.Filter (p, child) ->
      let child_ann =
        match harvest_children "Filter" 1 ann with [ c ] -> c | _ -> assert false
      in
      let rels, pred, acc = ccs_of_node child child_ann in
      let pred = Predicate.conj pred p in
      let cc = Cc.make rels pred ann.Executor.card in
      (rels, pred, cc :: acc)
  | Plan.Join (l, r, _) ->
      let lann, rann =
        match harvest_children "Join" 2 ann with
        | [ a; b ] -> (a, b)
        | _ -> assert false
      in
      let lrels, lpred, lacc = ccs_of_node l lann in
      let rrels, rpred, racc = ccs_of_node r rann in
      let rels = lrels @ rrels and pred = Predicate.conj lpred rpred in
      let cc = Cc.make rels pred ann.Executor.card in
      (rels, pred, cc :: (lacc @ racc))
  | Plan.Group_by (attrs, child) ->
      let child_ann =
        match harvest_children "Group_by" 1 ann with
        | [ c ] -> c
        | _ -> assert false
      in
      let rels, pred, acc = ccs_of_node child child_ann in
      let cc = Cc.make ~group_by:attrs rels pred ann.Executor.card in
      (rels, pred, cc :: acc)

let ccs_of_aqp plan ann =
  let _, _, ccs = ccs_of_node plan ann in
  List.rev ccs

let ccs_of_query db q =
  let _, ann = Executor.exec db q.plan in
  ccs_of_aqp q.plan ann

(* The audit-time mirror of [ccs_of_node]: walk a plan carrying the same
   (relations, conjoined predicate) expression per operator edge, and
   annotate each edge with the cardinality of the matching CC, if the
   given CC set covers that edge. Because the walk computes expressions
   exactly the way extraction does, an extracted workload's every edge
   matches and an audited re-execution can compare operator-for-operator. *)
let audit_expectation ccs plan =
  let module Audit = Hydra_audit.Audit in
  let annotate ?(group_by = []) rels pred children =
    let probe = Cc.make ~group_by rels pred 0 in
    let card =
      match List.find_opt (Cc.same_expression probe) ccs with
      | Some (cc : Cc.t) -> Some cc.Cc.card
      | None -> None
    in
    {
      Audit.exp_key = Cc.key probe;
      exp_rels = probe.Cc.relations;
      exp_card = card;
      exp_children = children;
    }
  in
  let rec walk plan =
    match plan with
    | Plan.Scan r -> ([ r ], Predicate.true_, annotate [ r ] Predicate.true_ [])
    | Plan.Filter (p, child) ->
        let rels, pred, ce = walk child in
        let pred = Predicate.conj pred p in
        (rels, pred, annotate rels pred [ ce ])
    | Plan.Join (l, r, _) ->
        let lrels, lpred, le = walk l in
        let rrels, rpred, re = walk r in
        let rels = lrels @ rrels and pred = Predicate.conj lpred rpred in
        (rels, pred, annotate rels pred [ le; re ])
    | Plan.Group_by (attrs, child) ->
        let rels, pred, ce = walk child in
        (rels, pred, annotate ~group_by:attrs rels pred [ ce ])
  in
  let _, _, e = walk plan in
  e

(* All CCs of the workload measured on [db], deduplicated across queries
   (identical subexpressions appear in many queries). Queries evaluate
   independently against the read-only client database, so they run on
   the pool; per-query CC lists come back in query order and dedup keeps
   the first occurrence, making the result independent of [jobs]. *)
let extract_ccs ?(jobs = 1) db t =
  let jobs = max 1 jobs in
  let qs = Array.of_list t.queries in
  let per_query =
    Pool.with_pool jobs (fun pool ->
        Pool.map_range pool (Array.length qs) (fun i -> ccs_of_query db qs.(i)))
  in
  List.concat (Array.to_list per_query) |> Cc.dedup

(* Uniform scaling of constraint counts: the CODD-based procedure of
   Sec. 7.4 (run plans at small scale, multiply intermediate counts).
   The product is computed in exact rational arithmetic — the float
   factor is converted to the dyadic rational it denotes — because
   [float_of_int card *. factor] loses integer precision beyond 2^53 and
   truncates toward zero, which deflates every scaled CC by up to one
   tuple and large ones by arbitrarily many. Round half-up, saturate to
   [max_int]. *)
let scale_card factor card =
  let open Hydra_arith in
  match Rat.of_float_opt factor with
  | None -> card (* unreachable after [scale_ccs]'s finiteness check *)
  | Some f -> (
      let exact = Rat.round_nearest (Rat.mul (Rat.of_int card) f) in
      match Bigint.to_int exact with
      | Some n -> max 0 n
      | None -> if Bigint.sign exact < 0 then 0 else max_int)

let scale_ccs factor ccs =
  (* validate up front: a nan/infinite factor used to bubble up as
     [Rat.of_float]'s raw message (or only on the first non-empty list),
     and a negative one silently clamped every count to zero *)
  if not (Float.is_finite factor) then
    invalid_arg
      (Printf.sprintf
         "Workload.scale_ccs: scale factor must be finite (got %s)"
         (string_of_float factor));
  if factor < 0.0 then
    invalid_arg
      (Printf.sprintf
         "Workload.scale_ccs: scale factor must be non-negative (got %s)"
         (string_of_float factor));
  List.map
    (fun (cc : Cc.t) -> { cc with Cc.card = scale_card factor cc.Cc.card })
    ccs

(* left-deep plan construction shared with the parser and CC measurement *)
let left_deep_plan = Plan_build.left_deep

(* log10 histogram of CC cardinalities: Figures 9 and 16 *)
let cardinality_histogram ccs =
  let buckets = Array.make 12 0 in
  List.iter
    (fun (cc : Cc.t) ->
      let b =
        if cc.Cc.card <= 0 then 0
        else
          let l = int_of_float (Float.log10 (float_of_int cc.Cc.card)) in
          min 11 (l + 1)
      in
      buckets.(b) <- buckets.(b) + 1)
    ccs;
  buckets
