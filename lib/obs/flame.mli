(** Folded-stack (flamegraph-compatible) export of the span tree.

    A {!collector} is a sink that retains every finished span; once a
    run completes, {!folded} reconstructs root-to-leaf name paths from
    the parent links and emits one [path value] line per distinct path,
    where [path] is the span names joined with [';'] and [value] is the
    path's aggregated {e self} time in integer microseconds (duration
    minus the durations of direct children, clamped at zero). The
    output is sorted by path, so it is stable for a given span tree and
    feeds directly into [flamegraph.pl] / [inferno] / speedscope. *)

type collector

val create : unit -> collector

val sink : ?out:string -> collector -> Obs.sink
(** A sink that records every finished span into the collector. With
    [?out], closing the sink (e.g. via [Obs.finish]) writes the folded
    stacks to that file — this is how [--flame-out] survives the CLI's
    degraded-exit paths. *)

val spans : collector -> Obs.span list
(** Collected spans, in completion order. Thread-safe. *)

val folded : Obs.span list -> (string * int) list
(** Folded stacks for an explicit span list: [(path, self_time_us)]
    pairs aggregated over same-path spans, sorted by path. Spans whose
    parent is absent from the list are treated as roots. *)

val folded_string : Obs.span list -> string
(** {!folded} rendered one ["path value\n"] line per entry. *)

val write_folded : string -> Obs.span list -> unit
(** Write {!folded_string} to a file. *)
