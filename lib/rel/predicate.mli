(** Selection predicates in disjunctive normal form (paper Sec. 4.1).

    A predicate is a disjunction of conjuncts; each conjunct restricts a
    set of attributes to intervals. Attributes are referenced by qualified
    name (["relation.attr"]). Normal form invariants: conjuncts carry each
    attribute at most once (sorted by name), and contradictory conjuncts
    are dropped. [[ [] ]] (one empty conjunct) is TRUE; [[]] is FALSE. *)

type conjunct = (string * Interval.t) list
(** One sub-constraint: a conjunction of per-attribute range atoms. *)

type t = conjunct list

val true_ : t
val false_ : t

val of_conjuncts : (string * Interval.t) list list -> t
(** Normalizes each conjunct (intersecting repeated attributes, dropping
    contradictions). *)

val atom : string -> Interval.t -> t
(** [atom attr iv] is the single-range predicate [attr IN iv]. *)

val disj : t -> t -> t
val conj : t -> t -> t

val restriction : conjunct -> string -> Interval.t
(** The interval a conjunct allows on an attribute; {!Interval.full} when
    the attribute is unconstrained (Def. 4.5's "true" restriction). *)

val eval_conjunct : (string -> int) -> conjunct -> bool
val eval : (string -> int) -> t -> bool
(** [eval lookup p] evaluates [p] on the point described by [lookup]. *)

val attrs : t -> string list
(** Sorted, distinct attributes referenced by the predicate. *)

val rename : (string -> string) -> t -> t
(** Attribute substitution (view lifting, anonymization). *)

val clamp : (string -> int * int) -> t -> t
(** Intersect every atom with its attribute's domain so all interval
    bounds become finite; conjuncts emptied by clamping are dropped. *)

val compare_t : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
