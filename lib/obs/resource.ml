(* Resource gauges: RSS from procfs, allocation/heap words from the GC.
   Sampling is cheap (one small file read + Gc.quick_stat), so a 1s
   period is far from the noise floor. *)

type t = {
  r_stop : bool Atomic.t;
  r_stopped : bool Atomic.t;
  r_dom : unit Domain.t;
}

(* registered on first sample, not at module load, so processes that
   never sample (most bench targets) keep their metric snapshots
   gauge-for-gauge identical to pre-sampler builds *)
let g_rss = lazy (Obs.gauge "process.rss_bytes")
let g_minor = lazy (Obs.gauge "gc.minor_words")
let g_major = lazy (Obs.gauge "gc.major_words")
let g_heap = lazy (Obs.gauge "gc.heap_words")

(* "VmRSS:     1234 kB" *)
let rss_bytes () =
  match open_in "/proc/self/status" with
  | exception Sys_error _ -> None
  | ic ->
      let rec scan () =
        match input_line ic with
        | exception End_of_file -> None
        | line ->
            if String.length line > 6 && String.sub line 0 6 = "VmRSS:" then
              let fields =
                String.split_on_char ' ' line
                |> List.concat_map (String.split_on_char '\t')
                |> List.filter (fun s -> s <> "")
              in
              match fields with
              | _ :: kb :: _ -> (
                  match float_of_string_opt kb with
                  | Some v -> Some (v *. 1024.0)
                  | None -> None)
              | _ -> None
            else scan ()
      in
      let r = scan () in
      close_in_noerr ic;
      r

let sample () =
  let st = Gc.quick_stat () in
  (* quick_stat's counters only reflect completed collections of the
     calling domain (they can be 0 on a lightly-allocating domain);
     Gc.minor_words reads the live allocation pointer, so prefer it *)
  Obs.gauge_max (Lazy.force g_minor)
    (Float.max (Gc.minor_words ()) st.Gc.minor_words);
  Obs.gauge_max (Lazy.force g_major) st.Gc.major_words;
  Obs.gauge_max (Lazy.force g_heap) (float_of_int st.Gc.heap_words);
  Obs.set_gauge (Lazy.force g_rss)
    (match rss_bytes () with Some b -> b | None -> 0.0)

let start ?(period_s = 1.0) () =
  let period_s = Float.max 0.01 period_s in
  sample ();
  let stop_flag = Atomic.make false in
  let dom =
    Domain.spawn (fun () ->
        let slice = Float.min 0.05 (Float.max 0.005 (period_s /. 4.0)) in
        let rec loop elapsed =
          if not (Atomic.get stop_flag) then begin
            Unix.sleepf slice;
            let elapsed = elapsed +. slice in
            if elapsed >= period_s then begin
              sample ();
              loop 0.0
            end
            else loop elapsed
          end
        in
        loop 0.0)
  in
  { r_stop = stop_flag; r_stopped = Atomic.make false; r_dom = dom }

let stop t =
  if not (Atomic.exchange t.r_stopped true) then begin
    Atomic.set t.r_stop true;
    Domain.join t.r_dom;
    sample ()
  end
