(** Exact verification / repair of candidate simplex bases.

    The float-first degradation ladder, each rung falling through to the
    next:

    + verify a cached warm-start basis (when given);
    + run the float shadow ({!Simplex_f}) and verify its terminal basis;
    + the pre-existing all-exact path ({!Simplex.run_phases} from the
      artificial start).

    "Verify" means: reconstruct the basis inverse in {!Hydra_arith.Rat},
    check primal feasibility exactly (singular or infeasible candidates
    are rejected to the next rung), then finish the solve from that
    state with exact pivots. A basis that was in fact optimal finishes
    with zero pivots; any pivots performed are a {e repair}, counted on
    the [simplex.verify_repairs] obs counter. Every reported solution is
    produced by exact arithmetic in all cases. *)

open Hydra_arith

val solve :
  ?objective:(int * Rat.t) list ->
  ?deadline:float ->
  ?max_iters:int ->
  ?warm_basis:int array ->
  ?basis_out:int array option ref ->
  Lp.t ->
  Simplex.status
(** Float-first drop-in for {!Simplex.solve} — same contract, same
    budget semantics (on a float-side timeout the exact path re-runs
    under the same budget so the verdict matches exact mode's).
    [warm_basis] is a terminal basis from a structurally identical LP
    (cached from an earlier run); it is verified first and silently
    discarded when singular, stale, or infeasible. *)

val solve_mode :
  ?objective:(int * Rat.t) list ->
  ?deadline:float ->
  ?max_iters:int ->
  ?warm_basis:int array ->
  ?basis_out:int array option ref ->
  Simplex.mode ->
  Lp.t ->
  Simplex.status
(** Dispatch on {!Simplex.mode}: {!Simplex.Exact} calls
    {!Simplex.solve} (ignoring [warm_basis]), {!Simplex.Float_first}
    calls {!solve}. *)
