(* Deterministic random-value machinery for the synthetic benchmark
   environments. Everything is seeded so client databases and workloads
   are reproducible across runs (the PDGF/Myriad trick of regenerating
   identical sequences from PRNG determinism). *)

type rng = { mutable state : int }

let rng seed = { state = (seed * 2) + 1 }

let next t =
  (* splitmix-style mixing within OCaml's 63-bit ints *)
  t.state <- t.state + 0x1E3779B97F4A7C15;
  let z = t.state in
  let z = (z lxor (z lsr 30)) * 0x3F58476D1CE4E5B9 in
  let z = (z lxor (z lsr 27)) * 0x14D049BB133111EB in
  (z lxor (z lsr 31)) land max_int

let below t n = if n <= 1 then 0 else next t mod n

(* uniform over [lo, hi) *)
let uniform t lo hi = lo + below t (hi - lo)

let float t = float_of_int (next t land 0xFFFFFFFF) /. 4294967296.0

let bool t p = float t < p

let choice t arr = arr.(below t (Array.length arr))

let choice_list t l = List.nth l (below t (List.length l))

(* Zipf-distributed rank in [0, n): precomputes the cumulative mass.
   Used for skewed fact-table foreign keys and attribute values. *)
type zipf = { cum : float array }

let zipf ~n ~theta =
  let cum = Array.make (n + 1) 0.0 in
  for i = 1 to n do
    cum.(i) <- cum.(i - 1) +. (1.0 /. (float_of_int i ** theta))
  done;
  { cum }

(* memoized zipf constructor: generators ask for the same (n, theta)
   pairs millions of times *)
let zipf_cache : (int * float, zipf) Hashtbl.t = Hashtbl.create 32

let zipf_cached ~n ~theta =
  match Hashtbl.find_opt zipf_cache (n, theta) with
  | Some z -> z
  | None ->
      let z = zipf ~n ~theta in
      Hashtbl.add zipf_cache (n, theta) z;
      z

let zipf_draw z t =
  let total = z.cum.(Array.length z.cum - 1) in
  let x = float t *. total in
  let lo = ref 0 and hi = ref (Array.length z.cum - 2) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if z.cum.(mid + 1) <= x then lo := mid + 1 else hi := mid
  done;
  !lo

(* pick [k] distinct elements of [l] *)
let sample_distinct t k l =
  let arr = Array.of_list l in
  let n = Array.length arr in
  let k = min k n in
  for i = 0 to k - 1 do
    let j = i + below t (n - i) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done;
  Array.to_list (Array.sub arr 0 k)
