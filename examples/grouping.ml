(* Grouping operators — the paper's future-work item (Sec. 9), supported
   here end to end: grouping CCs fix the number of DISTINCT values an
   attribute exhibits under a filter, and the regenerator meets them by
   spreading region cardinalities over multiple values.
   Run with:  dune exec examples/grouping.exe *)

let spec_text =
  {|
# an orders fact over a products dimension
table products (category int [0,20), price int [0,500));
table orders (p_fk -> products, quantity int [1,100));

cc |products| = 1000;
cc |orders| = 50000;

# tuple counts: how many rows survive the filters
cc |sigma(products.category in [0,5))(products)| = 400;
cc |sigma(products.category in [0,5))(orders join products)| = 21000;

# grouping: a report query "GROUP BY category, price" saw 120 groups for
# the cheap categories, and 15 distinct categories overall
cc |delta(products.category, products.price)(sigma(products.category in [0,5))(products))| = 120;
cc |delta(products.category)(products)| = 15;
|}

let () =
  let spec = Hydra_workload.Cc_parser.parse spec_text in
  let result =
    Hydra_core.Pipeline.regenerate spec.Hydra_workload.Cc_parser.schema
      spec.Hydra_workload.Cc_parser.ccs
  in
  (match result.Hydra_core.Pipeline.group_residuals with
  | [] -> print_endline "all grouping constraints met exactly"
  | rs ->
      List.iter
        (fun (r : Hydra_core.Grouping.residual) ->
          Printf.printf "residual on %s over {%s}: wanted %d, achieved %d\n"
            r.Hydra_core.Grouping.r_view
            (String.concat "," r.Hydra_core.Grouping.r_attrs)
            r.Hydra_core.Grouping.r_target r.Hydra_core.Grouping.r_achieved)
        rs);
  let db = Hydra_core.Tuple_gen.materialize result.Hydra_core.Pipeline.summary in
  print_endline "constraint                                            expected   actual";
  List.iter
    (fun (cc : Hydra_workload.Cc.t) ->
      Printf.printf "%-52s %8d %8d\n"
        (Hydra_workload.Cc.to_string cc)
        cc.Hydra_workload.Cc.card
        (Hydra_workload.Cc.measure db cc))
    spec.Hydra_workload.Cc_parser.ccs;
  (* the group-by query really returns that many groups *)
  let plan =
    Hydra_engine.Plan.Group_by
      ( [ "products.category"; "products.price" ],
        Hydra_engine.Plan.Filter
          ( Hydra_rel.Predicate.atom "products.category"
              (Hydra_rel.Interval.make 0 5),
            Hydra_engine.Plan.Scan "products" ) )
  in
  Printf.printf "\nGROUP BY (category, price) over cheap categories: %d groups\n"
    (Hydra_engine.Executor.cardinality db plan)
