(** Observability core: nested spans, a process-global metric registry,
    a ring-buffer event log, and pluggable sinks.

    Everything routes through one global [enabled] switch. When tracing
    is disabled (the default) every instrumentation call short-circuits
    on a single flag test — no clock reads, no allocation — so
    instrumented hot paths are free in production, and enabling tracing
    never changes what the instrumented code computes (it only watches).

    The only always-on facility is the event ring buffer: incidents such
    as degraded views or uncovered relations are recorded even when
    tracing is off, so diagnostics survive without any setup cost.

    Every entry point is domain-safe: metric updates accumulate in
    per-domain shards (plain writes, no locks on the hot path) that are
    merged commutatively at snapshot time, the span stack is
    domain-local, and the event ring and sink delivery serialize under
    mutexes. Counter totals and histogram masses observed at quiescent
    points (after a parallel region has joined) are exact and equal to
    what a sequential run would have produced; gauges merge across
    domains by maximum (every current gauge is a high-water mark).
    {!reset} and {!snapshot} may run concurrently with instrumented code
    without crashing, but only quiescent snapshots are exact. *)

(* ---- attribute values ---- *)

type value = Str of string | Int of int | Float of float | Bool of bool

type attrs = (string * value) list

type level = Debug | Info | Warn | Error

val level_name : level -> string

val level_of_name : string -> level option
(** Inverse of {!level_name}; [None] for unknown names. *)

val value_json : value -> Json.t
(** Attribute value as JSON (used by the trace/ledger exporters). *)

(* ---- global switch ---- *)

val enabled : unit -> bool
val set_enabled : bool -> unit

(* ---- spans ---- *)

type span = {
  sp_id : int;
  sp_parent : int;  (** [-1] for a root span *)
  sp_name : string;
  sp_start : float;  (** {!Mclock} seconds *)
  sp_end : float;
  sp_attrs : attrs;
}

val with_span : ?attrs:attrs -> string -> (unit -> 'a) -> 'a
(** Run the thunk inside a span. Disabled mode calls the thunk directly.
    The span is closed (and delivered to sinks) even if the thunk
    raises. Spans nest: the innermost open span is the parent. *)

val span_attr : string -> value -> unit
(** Attach an attribute to the innermost open span; no-op when disabled
    or outside any span. *)

(* ---- metrics registry ---- *)

type counter
type gauge
type histogram

val counter : string -> counter
(** Get-or-create by name; the handle stays valid across {!reset}. *)

val incr : counter -> int -> unit
val counter_value : counter -> int

val gauge : string -> gauge
val set_gauge : gauge -> float -> unit
val gauge_max : gauge -> float -> unit
(** Keep the maximum of all observations (e.g. deepest B&B node). *)

val histogram : string -> histogram
val observe : histogram -> float -> unit

val bucket_of : float -> int
(** Log-scaled bucket index: bucket [0] holds values [<= 2^-20] (and all
    non-positive values), bucket [i] holds [(2^(i-21), 2^(i-20)]], and the
    last bucket collects overflow. Exposed for tests. *)

val bucket_upper : int -> float
(** Inclusive upper bound of a bucket; [infinity] for the last. *)

val num_buckets : int

(* ---- events (always-on ring buffer) ---- *)

type event = {
  ev_time : float;
  ev_level : level;
  ev_msg : string;
  ev_attrs : attrs;
}

val event : ?level:level -> ?attrs:attrs -> string -> unit
(** Record into the ring buffer (always); forward to sinks when enabled. *)

val recent_events : unit -> event list
(** Ring-buffer contents, oldest first (capacity 256). *)

(* ---- sinks ---- *)

type sink = {
  sink_span : span -> unit;
  sink_event : event -> unit;
  sink_close : unit -> unit;
}

val add_sink : sink -> unit

val text_sink : out_channel -> sink
(** Human-readable lines, e.g. [obs] span pipeline.view 12.3ms rel=item. *)

val jsonl_sink : string -> sink
(** One JSON object per finished span / event, appended to the file. *)

val set_sink_level : level -> unit
(** Minimum level an event must have to be forwarded to sinks (default
    [Debug], i.e. everything). The always-on ring buffer is unaffected —
    suppressed events are still recorded and visible through
    {!recent_events}; spans are unaffected too. *)

val sink_level : unit -> level

(* ---- snapshots ---- *)

type snapshot

val snapshot : unit -> snapshot
(** Point-in-time copy of the whole registry, including per-span-name
    duration and allocation aggregates, merged across every domain that
    ever contributed. *)

val local_snapshot : unit -> snapshot
(** Like {!snapshot} but restricted to the calling domain's own shard —
    the metric delta between two [local_snapshot]s brackets exactly the
    work this domain did in between, regardless of what other domains
    were running. This is how the pipeline attributes solver counters to
    individual views under parallel regeneration (each view runs whole
    on one domain). On a program that never spawned domains it equals
    {!snapshot}. *)

val snapshot_counters : snapshot -> (string * int) list
(** Counter totals by name, sorted. *)

val snapshot_gauges : snapshot -> (string * float) list
(** Gauge values by name (cross-domain maximum), sorted. *)

val snapshot_hists : snapshot -> (string * (int * float * int array)) list
(** Histograms by name as [(count, sum, buckets)] ({!bucket_of}
    layout), sorted. *)

val snapshot_spans : snapshot -> (string * (int * float * float * float)) list
(** Span aggregates by name as
    [(count, seconds, minor_words, major_words)], sorted. *)

val flatten : snapshot -> (string * float) list
(** Flat metric view: counters and gauges under their own names,
    histograms as [name.count]/[name.sum], span aggregates as
    [span.name.count]/[span.name.seconds]. Sorted by name. Span
    allocation words are deliberately excluded (they are GC-schedule
    dependent, so they would break cross-jobs metric determinism); read
    them through {!span_alloc} or {!snapshot_json}. *)

val percentile_of_buckets : int array -> float -> float
(** [percentile_of_buckets buckets q] estimates the [q]-quantile
    ([0..1]) of the observations summarized by a log-histogram bucket
    array ({!bucket_of} layout): rank-based, linearly interpolated
    inside the covering bucket, [0] when empty, and the overflow
    bucket's lower bound when the rank lands there. Deterministic in the
    bucket counts. *)

val percentiles : snapshot -> (string * (float * float * float)) list
(** Per-histogram [(p50, p95, p99)] estimates, in snapshot (name)
    order. *)

val span_alloc : snapshot -> (string * (float * float)) list
(** Per-span-name [(minor_words, major_words)] allocated inside the
    span (summed over all closings, nested spans double-counted like
    seconds), in snapshot order. *)

val diff : snapshot -> snapshot -> (string * float) list
(** [diff before after]: flattened after-minus-before, non-zero entries
    only — the metric delta attributable to the enclosed work. *)

val snapshot_json : snapshot -> Json.t
val metrics_json : unit -> Json.t
(** [snapshot_json (snapshot ())]. *)

(* ---- lifecycle ---- *)

val reset : unit -> unit
(** Zero every registered metric, span aggregate and the event ring.
    Handles returned by {!counter}/{!gauge}/{!histogram} stay valid. *)

val set_metrics_out : string -> unit
(** Write a metrics snapshot to this path at {!finish} time. *)

val write_metrics : string -> unit
(** Write a pretty-printed metrics snapshot to the path right now. *)

val init_from_env : unit -> unit
(** Parse [HYDRA_OBS] — comma-separated [on], [text], [trace=FILE],
    [metrics=FILE], [level=LEVEL] — and enable the corresponding sinks.
    [level=] only sets the sink threshold ({!set_sink_level}); it does
    not enable tracing by itself. Unknown tokens are ignored (the CLI
    reads [progress=N] from the same variable). *)

val finish : unit -> unit
(** Write the pending metrics file (if {!set_metrics_out} was called),
    flush and close all sinks. Idempotent; safe from [at_exit]. *)
