(** Query execution plans for the workload class of the paper (Sec. 2.2):
    DNF filters on non-key attributes and PK-FK equi-joins, composed into
    (typically left-deep) trees. *)

open Hydra_rel

type join_spec = {
  fk_col : string;  (** qualified foreign-key column, e.g. ["R.S_fk"] *)
  pk_rel : string;  (** relation whose primary key it references *)
}

type t =
  | Scan of string
  | Filter of Predicate.t * t
  | Join of t * t * join_spec  (** the fk side is the left input *)
  | Group_by of string list * t
      (** duplicate elimination on the qualified attributes — the output
          cardinality of a grouping operator (the paper's future-work
          extension, supported here end to end) *)

val relations : t -> string list
(** Base relations scanned, in plan order (with duplicates if re-scanned). *)

val filters : t -> Predicate.t list
(** Every filter predicate in the tree. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
