(** Deterministic fault injection for crash-safety testing.

    A {e fault plan} arms one named {e site} — a place in the pipeline
    that has opted in by calling {!tap} — and makes the [n]-th pass
    through that site fail in a chosen way. Plans are fully
    deterministic: the same plan against the same workload fires at the
    same point every run, which is what lets the test battery prove
    byte-identical crash/resume behaviour.

    When no plan is armed, {!tap} is a single mutable-bool read — the
    production pipeline pays nothing for carrying the hooks. *)

val sites : string list
(** The registry of named injection sites, in pipeline order:
    ["solve"], ["pool.task"], ["cache.read"], ["cache.write"],
    ["journal.append"], ["summary.save"], ["materialize.shard"]. *)

type kind =
  | Transient  (** raise {!Injected} — a retryable worker failure *)
  | Crash  (** raise {!Crashed} — simulated process death, unwinds *)
  | Kill  (** [Unix._exit 70] — real process death, nothing unwinds *)

type plan = {
  site : string;  (** which {!sites} entry to arm *)
  kind : kind;
  after : int;  (** fire on the [after]-th pass through the site (1-based) *)
  times : int;  (** how many consecutive passes fire; [0] = unlimited *)
}

exception Injected of string
(** A transient injected failure; carries the site name. Classified as
    retryable by [Supervisor.default_policy]. *)

exception Crashed of string
(** A simulated crash; carries the site name. Never caught inside the
    pipeline — it unwinds to the test harness (or to the CLI, exit 70)
    exactly like a power cut would end the process. *)

val is_injected : exn -> bool
(** [true] for {!Injected} and {!Crashed}. Every catch-all handler in
    the pipeline guards with [when not (Chaos.is_injected e)] so
    injected faults are never absorbed into graceful degradation. *)

val parse : string -> (plan, string) result
(** Parse a plan spec: comma-separated [key=value] pairs with keys
    [site] (required, must be registered), [kind]
    ([transient]|[crash]|[kill], default [crash]), [after] (default 1),
    [times] (default 1, [0] = unlimited). Example:
    ["site=solve,kind=crash,after=2"]. *)

val arm : plan -> unit
(** Arm [plan], replacing any previous one and resetting pass counters.
    @raise Invalid_argument if [plan.site] is not registered. *)

val disarm : unit -> unit
(** Remove the armed plan. Subsequent {!tap} calls are free again. *)

val armed : unit -> plan option

val tap : string -> unit
(** [tap site] marks one pass through [site]. No-op unless a plan for
    [site] is armed and its trigger window covers this pass, in which
    case it raises ({!Injected} / {!Crashed}) or exits ([Kill]). *)

val fired : unit -> int
(** How many times the current plan has fired since {!arm}. *)

val with_plan : plan -> (unit -> 'a) -> 'a
(** [with_plan p f] runs [f] with [p] armed and always disarms,
    including when [f] raises. *)

val init_from_env : unit -> unit
(** Arm a plan from [HYDRA_CHAOS] when set and non-empty. Prints the
    parse error to stderr and exits 1 on a malformed spec. *)

val kill_exit_code : int
(** Exit code used by [Kill] (and by the CLI for {!Crashed}): 70. *)
