(* Fixed domain pool with deterministic result placement.

   One mutex guards the batch queue and all batch bookkeeping; workers
   claim the next unclaimed index of the head batch under that lock and
   run the task outside it. Task granularity in HYDRA (a view solve, a
   row-range shard, a query's AQP) is orders of magnitude above the cost
   of an uncontended lock, so a single lock keeps the scheduler trivially
   correct without measurable overhead.

   Determinism: every index is claimed exactly once and its result is
   written to its own slot, so [map_range] output is independent of the
   schedule. Only per-task side effects (obs metrics, which accumulate
   per-domain and merge commutatively) see the interleaving. *)

module Chaos = Hydra_chaos.Chaos

type failure = {
  f_index : int;
  f_exn : exn;
  f_backtrace : Printexc.raw_backtrace;
}

exception Batch_failure of failure list

let () =
  Printexc.register_printer (function
    | Batch_failure fs ->
        Some
          (Printf.sprintf "Pool.Batch_failure [%s]"
             (String.concat "; "
                (List.map
                   (fun f ->
                     Printf.sprintf "%d: %s" f.f_index
                       (Printexc.to_string f.f_exn))
                   fs)))
    | _ -> None)

type batch = {
  bn : int;
  brun : int -> unit;  (* wrapped task: never raises *)
  mutable bnext : int;  (* next unclaimed index; under the pool mutex *)
  mutable bdone : int;  (* completed tasks; under the pool mutex *)
}

type t = {
  width : int;
  mutable workers : unit Domain.t list;
  m : Mutex.t;
  work : Condition.t;  (* a batch arrived / the pool is closing *)
  finished : Condition.t;  (* some batch completed its last task *)
  queue : batch Queue.t;
  mutable closing : bool;
}

(* set in worker domains so nested submissions run inline instead of
   deadlocking on their own pool *)
let in_worker : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

let default_jobs () =
  match Sys.getenv_opt "HYDRA_JOBS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | _ -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

let jobs t = t.width

(* drop fully-claimed batches from the head of the queue. Invariant
   (restored after every claim, under the pool mutex): the head of the
   queue always has unclaimed work. A batch can be exhausted while NOT
   at the head — a nested batch pushed behind a still-draining outer one
   and drained directly by its submitter — so a claim-time head-only pop
   is not enough: the stale batch would sit at the head forever once its
   predecessors drain, and workers would spin on it without ever
   re-checking [closing]. The purge loop pops every exhausted prefix. *)
let purge t =
  let exhausted (b : batch) = b.bnext >= b.bn in
  while (not (Queue.is_empty t.queue)) && exhausted (Queue.peek t.queue) do
    ignore (Queue.pop t.queue)
  done

(* claim the next index of [b] (which need not be at the head) *)
let try_claim t b =
  let i = b.bnext in
  if i >= b.bn then None
  else begin
    b.bnext <- i + 1;
    purge t;
    Some i
  end

let complete t b =
  Mutex.lock t.m;
  b.bdone <- b.bdone + 1;
  if b.bdone = b.bn then Condition.broadcast t.finished;
  Mutex.unlock t.m

(* run tasks of [b] until none are left unclaimed *)
let help t b =
  let rec loop () =
    Mutex.lock t.m;
    let claimed = try_claim t b in
    Mutex.unlock t.m;
    match claimed with
    | None -> ()
    | Some i ->
        b.brun i;
        complete t b;
        loop ()
  in
  loop ()

let worker t () =
  Domain.DLS.set in_worker true;
  let rec loop () =
    Mutex.lock t.m;
    while Queue.is_empty t.queue && not t.closing do
      Condition.wait t.work t.m
    done;
    if Queue.is_empty t.queue then Mutex.unlock t.m (* closing: exit *)
    else begin
      let b = Queue.peek t.queue in
      let claimed = try_claim t b in
      Mutex.unlock t.m;
      (match claimed with
      | None -> ()
      | Some i ->
          b.brun i;
          complete t b);
      loop ()
    end
  in
  loop ()

let create width =
  if width < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  let t =
    {
      width;
      workers = [];
      m = Mutex.create ();
      work = Condition.create ();
      finished = Condition.create ();
      queue = Queue.create ();
      closing = false;
    }
  in
  if width > 1 then
    t.workers <- List.init (width - 1) (fun _ -> Domain.spawn (worker t));
  t

let shutdown t =
  Mutex.lock t.m;
  t.closing <- true;
  Condition.broadcast t.work;
  Mutex.unlock t.m;
  List.iter Domain.join t.workers;
  t.workers <- []

let with_pool width f =
  let t = create width in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let guarded f i =
  try
    Chaos.tap "pool.task";
    Ok (f i)
  with e ->
    Error { f_index = i; f_exn = e; f_backtrace = Printexc.get_raw_backtrace () }

let map_range_result (type a) t n (f : int -> a) :
    (a, failure) result array =
  if n < 0 then invalid_arg "Pool.map_range_result: negative range";
  if n = 0 then [||]
  else if t.width <= 1 || n = 1 || Domain.DLS.get in_worker then
    (* inline: same claim order (ascending), no domains involved. Every
       index still runs — a failure settles into its slot instead of
       aborting the batch, matching the parallel path. *)
    Array.init n (guarded f)
  else begin
    let results : (a, failure) result option array = Array.make n None in
    let run i = results.(i) <- Some (guarded f i) in
    let b = { bn = n; brun = run; bnext = 0; bdone = 0 } in
    Mutex.lock t.m;
    Queue.push b t.queue;
    Condition.broadcast t.work;
    Mutex.unlock t.m;
    (* the caller is one of the [width] workers for this batch *)
    help t b;
    Mutex.lock t.m;
    while b.bdone < b.bn do
      Condition.wait t.finished t.m
    done;
    Mutex.unlock t.m;
    Array.map
      (function Some r -> r | None -> assert false (* settled above *))
      results
  end

let failures_of results =
  Array.to_seq results
  |> Seq.filter_map (function Error f -> Some f | Ok _ -> None)
  |> List.of_seq

let raise_failures = function
  | [] -> ()
  | fs -> (
      (* a simulated crash ends the run as itself — it must reach the
         harness (or the CLI's exit-70 mapping) unwrapped, like a real
         kill would. Only after every slot settled, so an exception
         never leaves half a batch running. *)
      match List.find_opt (fun f -> Chaos.is_injected f.f_exn) fs with
      | Some f when (match f.f_exn with Chaos.Crashed _ -> true | _ -> false)
        ->
          Printexc.raise_with_backtrace f.f_exn f.f_backtrace
      | _ -> raise (Batch_failure fs))

let map_range t n f =
  let results = map_range_result t n f in
  raise_failures (failures_of results);
  Array.map (function Ok v -> v | Error _ -> assert false) results

let iter_range t n f = ignore (map_range t n f)

let map_list t f xs =
  let arr = Array.of_list xs in
  Array.to_list (map_range t (Array.length arr) (fun i -> f arr.(i)))
