(* End-to-end HYDRA pipeline (Fig. 2, vendor site): schema + CCs in,
   database summary out, with per-view diagnostics for the experiments. *)

open Hydra_rel
open Hydra_workload

type view_stats = {
  rel : string;
  num_subviews : int;
  num_lp_vars : int;
  num_lp_constraints : int;
  solve_seconds : float;
}

type result = {
  summary : Summary.t;
  views : view_stats list;
  group_residuals : Grouping.residual list;
      (* grouping CCs that value spreading could not meet exactly *)
  total_seconds : float;
}

(* Add missing size CCs from a fallback table (metadata row counts): every
   relation needs a |R| = k constraint, but the workload may never scan
   some relations. *)
let complete_size_ccs schema ccs fallback_sizes =
  let has_size rname =
    List.exists
      (fun (cc : Cc.t) ->
        cc.Cc.relations = [ rname ]
        && cc.Cc.group_by = []
        && Predicate.equal cc.Cc.predicate Predicate.true_)
      ccs
  in
  let extra =
    List.filter_map
      (fun r ->
        let rname = r.Schema.rname in
        if has_size rname then None
        else
          match List.assoc_opt rname fallback_sizes with
          | Some n -> Some (Cc.size_cc rname n)
          | None -> None)
      (Schema.relations schema)
  in
  ccs @ extra

let regenerate ?(sizes = []) ?(max_nodes = 2000) ?(policy = `Low_corner)
    ?(histograms = []) schema ccs =
  let t0 = Unix.gettimeofday () in
  let ccs = complete_size_ccs schema ccs sizes in
  let views = Preprocess.run schema ccs in
  let results =
    List.map
      (fun view ->
        let t = Unix.gettimeofday () in
        let r = Formulate.solve_view ~max_nodes view in
        let dt = Unix.gettimeofday () -. t in
        (r, dt))
      views
  in
  let residuals = ref [] in
  let view_solutions =
    List.map
      (fun ((r : Formulate.view_result), _) ->
        let merged = Align.merge_all r.Formulate.solutions in
        (* enforce grouping (distinct-count) CCs by value spreading *)
        let merged, res =
          Grouping.refine ~policy r.Formulate.view merged
        in
        residuals := res @ !residuals;
        (* optional client histograms: spread values inside regions to
           track the original distributions (future-work extension) *)
        let merged =
          if histograms = [] then merged
          else
            Correlation.refine
              ~owner:r.Formulate.view.Preprocess.vrel histograms merged
        in
        (r.Formulate.view.Preprocess.vrel, merged))
      results
  in
  let summary = Summary.of_view_solutions ~policy schema view_solutions in
  let stats =
    List.map
      (fun ((r : Formulate.view_result), dt) ->
        {
          rel = r.Formulate.view.Preprocess.vrel;
          num_subviews = List.length r.Formulate.problems;
          num_lp_vars = r.Formulate.lp_vars;
          num_lp_constraints = r.Formulate.lp_constraints;
          solve_seconds = dt;
        })
      results
  in
  {
    summary;
    views = stats;
    group_residuals = !residuals;
    total_seconds = Unix.gettimeofday () -. t0;
  }

let total_lp_vars result =
  List.fold_left (fun acc v -> acc + v.num_lp_vars) 0 result.views
