(** Minimal blocking HTTP/1.1 GET client for scraping {!Server}
    endpoints from tests, cram scripts and CI without depending on an
    external [curl]. One request per connection ([Connection: close]);
    the whole exchange is bounded by {!Server.read_timeout_s}-style
    socket timeouts so a wedged server cannot hang a test forever. *)

val get :
  ?host:string -> ?timeout_s:float -> port:int -> string -> (int * string, string) result
(** [get ~port path] connects to [host] (default [127.0.0.1]),
    requests [path] and returns [(status, body)]. Connection, timeout
    and malformed-response failures come back as [Error msg] — never an
    exception — so CLI callers can print one clean line. *)
