(* Axis-aligned boxes over a fixed attribute ordering: the geometric
   currency of both partitioning strategies. A box assigns one interval per
   dimension; a region (partition block) is a disjoint union of boxes. *)

open Hydra_rel

type t = Interval.t array

let full_domain domains : t = Array.copy domains
let is_empty (b : t) = Array.exists Interval.is_empty b

let inter (a : t) (b : t) : t option =
  let r = Array.map2 Interval.inter a b in
  if is_empty r then None else Some r

let contains (b : t) point = Array.for_all2 Interval.contains b point

(* the canonical representative of a box: its low corner (Sec. 5.2 uses
   left boundaries to instantiate tuples) *)
let low_corner (b : t) = Array.map (fun iv -> iv.Interval.lo) b

let equal (a : t) (b : t) = Array.for_all2 Interval.equal a b

(* split a box along dimension [dim] by interval [iv]: the part inside
   [iv] (at most one box) and the parts outside (at most two). *)
let split_dim (b : t) dim iv =
  let cur = b.(dim) in
  let inside_iv = Interval.inter cur iv in
  let inside =
    if Interval.is_empty inside_iv then None
    else begin
      let nb = Array.copy b in
      nb.(dim) <- inside_iv;
      Some nb
    end
  in
  let outside =
    if Interval.is_empty inside_iv then [ b ]
    else begin
      let below = Interval.make cur.Interval.lo inside_iv.Interval.lo in
      let above = Interval.make inside_iv.Interval.hi cur.Interval.hi in
      List.filter_map
        (fun part ->
          if Interval.is_empty part then None
          else begin
            let nb = Array.copy b in
            nb.(dim) <- part;
            Some nb
          end)
        [ below; above ]
    end
  in
  (inside, outside)

(* refine a box along dimension [dim] at the given sorted cut points so
   that no resulting box crosses a cut (Sec. 4 consistency refinement) *)
let cut_dim (b : t) dim cuts =
  let iv = b.(dim) in
  let inner =
    List.filter (fun p -> iv.Interval.lo < p && p < iv.Interval.hi) cuts
  in
  let bounds = (iv.Interval.lo :: inner) @ [ iv.Interval.hi ] in
  let rec pieces = function
    | lo :: (hi :: _ as rest) ->
        let nb = Array.copy b in
        nb.(dim) <- Interval.make lo hi;
        nb :: pieces rest
    | _ -> []
  in
  pieces bounds

let pp fmt (b : t) =
  Format.pp_print_string fmt "(";
  Array.iteri
    (fun i iv ->
      if i > 0 then Format.pp_print_string fmt " x ";
      Interval.pp fmt iv)
    b;
  Format.pp_print_string fmt ")"
