(** Volumetric-similarity validation (Sec. 7.1): execute every CC's
    expression against a regenerated database and report per-CC relative
    errors plus the coverage curve of Fig. 10. *)

open Hydra_workload

type cc_report = {
  cc : Cc.t;
  expected : int;
  actual : int;
  rel_error : float;
      (** signed; negative when fewer rows than expected. Zero-cardinality
          CCs use a +1 denominator so repair tuples register as bounded
          error. *)
}

type t = {
  reports : cc_report list;
  max_abs_error : float;
  mean_abs_error : float;
  exact_fraction : float;
  negative_fraction : float;
      (** the paper's Hydra produces no negative errors; DataSynth ~1/3 *)
  uncovered_relations : string list;
      (** schema relations measured by no CC at all: their volumetric
          similarity is unchecked. {!by_relation} raises a [Warn] event
          through the obs event log for each. *)
}

val check :
  ?audit:Hydra_audit.Audit.trail -> Hydra_engine.Database.t -> Cc.t list -> t
(** With [?audit], every CC measurement runs through
    [Executor.exec_audited] so the trail receives one record per plan
    operator (expectations built from the full CC list via
    [Workload.audit_expectation]). Auditing never changes the returned
    report — observation is pure. *)

val coverage_at : t -> float -> float
(** Fraction of CCs with |relative error| <= threshold. *)

val coverage_curve : t -> float list -> (float * float) list
val worst : t -> int -> cc_report list
(** The k CCs with the largest absolute error. *)

type relation_report = {
  rr_rels : string list;  (** the CCs' join group *)
  rr_ccs : int;
  rr_exact : int;
  rr_max_abs_error : float;
}

val by_relation : t -> relation_report list
(** CC reports grouped by join group, in first-appearance order — the
    validation-side counterpart of the pipeline's per-view statuses.
    Emits a one-line [Warn] through {!Hydra_obs.Obs.event} for every
    relation in [uncovered_relations] instead of silently omitting it. *)

val reconciles_audit : t -> Hydra_audit.Audit.group_stat list -> bool
(** [reconciles_audit t (Audit.by_relation records)] — do the audit
    trail's per-relation totals (group count, CCs, exact CCs, max
    absolute relative error) agree {e exactly} with this report's
    {!by_relation}? Both sides compute errors from the same integers
    with the same formula, so agreement is by float equality. True for
    any audited validation over a deduplicated CC list. *)

val pp : Format.formatter -> t -> unit
