(* Arbitrary-precision integers with a native fast path.

   Values that fit comfortably in a native [int] are represented as [S n]
   and handled with machine arithmetic plus overflow guards; only when a
   computation might exceed the safe range does it fall back to the
   sign-magnitude limb representation [B _] in base 2^30 (no leading zero
   limb; [sign = 0] exactly when [mag] is empty). The fast path matters:
   simplex pivots perform millions of rational operations whose operands
   are almost always tiny. Base 2^30 keeps every intermediate limb
   product below 2^62, safe for the 63-bit native [int]. *)

let base_bits = 30
let base = 1 lsl base_bits
let base_mask = base - 1

type big = { sign : int; mag : int array }
type t = S of int | B of big

let zero = S 0

(* ---- magnitude helpers (arrays of limbs, non-negative) ---- *)

let normalize_mag mag =
  let n = Array.length mag in
  let rec top i = if i >= 0 && mag.(i) = 0 then top (i - 1) else i in
  let t = top (n - 1) in
  if t = n - 1 then mag else Array.sub mag 0 (t + 1)

let cmp_mag a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then compare la lb
  else
    let rec go i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then compare a.(i) b.(i)
      else go (i - 1)
    in
    go (la - 1)

let add_mag a b =
  let la = Array.length a and lb = Array.length b in
  let lr = (if la > lb then la else lb) + 1 in
  let r = Array.make lr 0 in
  let carry = ref 0 in
  for i = 0 to lr - 1 do
    let da = if i < la then a.(i) else 0 in
    let db = if i < lb then b.(i) else 0 in
    let s = da + db + !carry in
    r.(i) <- s land base_mask;
    carry := s lsr base_bits
  done;
  r

(* requires [cmp_mag a b >= 0] *)
let sub_mag a b =
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let db = if i < lb then b.(i) else 0 in
    let s = a.(i) - db - !borrow in
    if s < 0 then begin
      r.(i) <- s + base;
      borrow := 1
    end
    else begin
      r.(i) <- s;
      borrow := 0
    end
  done;
  r

let mul_mag a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then [||]
  else begin
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      let ai = a.(i) in
      for j = 0 to lb - 1 do
        let t = r.(i + j) + (ai * b.(j)) + !carry in
        r.(i + j) <- t land base_mask;
        carry := t lsr base_bits
      done;
      r.(i + lb) <- r.(i + lb) + !carry
    done;
    r
  end

let mul_small_mag a d =
  (* [a * d] for [0 <= d < base] *)
  let la = Array.length a in
  if la = 0 || d = 0 then [||]
  else begin
    let r = Array.make (la + 1) 0 in
    let carry = ref 0 in
    for i = 0 to la - 1 do
      let t = (a.(i) * d) + !carry in
      r.(i) <- t land base_mask;
      carry := t lsr base_bits
    done;
    r.(la) <- !carry;
    r
  end

let divmod_small_mag a d =
  (* quotient magnitude and integer remainder of [a / d] for [0 < d < base] *)
  let la = Array.length a in
  let q = Array.make la 0 in
  let r = ref 0 in
  for i = la - 1 downto 0 do
    let cur = (!r lsl base_bits) lor a.(i) in
    q.(i) <- cur / d;
    r := cur mod d
  done;
  (q, !r)

(* compare [rem] with [bq] shifted left by [pos] limbs *)
let cmp_shifted rem bq pos =
  let lr = Array.length rem and lq = Array.length bq in
  let hi = (if lr > lq + pos then lr else lq + pos) - 1 in
  let rec go i =
    if i < 0 then 0
    else
      let dr = if i < lr then rem.(i) else 0 in
      let dq = if i >= pos && i - pos < lq then bq.(i - pos) else 0 in
      if dr <> dq then compare dr dq else go (i - 1)
  in
  go hi

(* in-place [rem := rem - (bq << pos)]; requires the result non-negative *)
let sub_shifted_inplace rem bq pos =
  let lq = Array.length bq in
  let borrow = ref 0 in
  for i = pos to Array.length rem - 1 do
    let dq = if i - pos < lq then bq.(i - pos) else 0 in
    if dq = 0 && !borrow = 0 then ()
    else begin
      let s = rem.(i) - dq - !borrow in
      if s < 0 then begin
        rem.(i) <- s + base;
        borrow := 1
      end
      else begin
        rem.(i) <- s;
        borrow := 0
      end
    end
  done

(* long division of magnitudes: per quotient limb, binary-search the largest
   digit q with (b * q) << pos <= rem.  O(limbs^2 * 30), simple and exact;
   operand sizes in this codebase stay small (a handful of limbs). *)
let divmod_mag a b =
  let la = Array.length a and lb = Array.length b in
  if lb = 0 then raise Division_by_zero;
  if cmp_mag a b < 0 then ([||], Array.copy a)
  else begin
    let q = Array.make (la - lb + 1) 0 in
    let rem = Array.copy a in
    for pos = la - lb downto 0 do
      let lo = ref 0 and hi = ref base_mask in
      while !lo < !hi do
        let mid = (!lo + !hi + 1) / 2 in
        if cmp_shifted rem (mul_small_mag b mid) pos >= 0 then lo := mid
        else hi := mid - 1
      done;
      if !lo > 0 then begin
        q.(pos) <- !lo;
        sub_shifted_inplace rem (mul_small_mag b !lo) pos
      end
    done;
    (q, rem)
  end

(* ---- representation changes ---- *)

(* limbs of |n| without computing [abs n] (min_int-safe) *)
let mag_of_int n =
  let rec limbs n acc =
    if n = 0 then List.rev acc
    else limbs (n / base) (Stdlib.abs (n mod base) :: acc)
  in
  Array.of_list (limbs n [])

let big_of_int n =
  { sign = (if n > 0 then 1 else if n < 0 then -1 else 0); mag = mag_of_int n }

(* magnitude -> native int when it fits in 62 bits *)
let small_of_mag sign mag =
  let l = Array.length mag in
  if l = 0 then Some 0
  else if l > 3 then None
  else if l = 3 && mag.(2) >= 1 lsl 2 then None
  else begin
    let v = ref 0 in
    for i = l - 1 downto 0 do
      v := (!v lsl base_bits) lor mag.(i)
    done;
    Some (if sign < 0 then - !v else !v)
  end

let make sign mag =
  let mag = normalize_mag mag in
  if Array.length mag = 0 then zero
  else
    match small_of_mag sign mag with
    | Some n -> S n
    | None -> B { sign; mag }

let of_int n = S n

let to_big = function S n -> big_of_int n | B b -> b

(* native-int overflow guards: the fast path only accepts operands whose
   results provably stay within 62 bits *)
let small_limit = 1 lsl 61 (* |v| below this is always safe to add *)
let mul_limit = 1 lsl 30 (* |a|,|b| below this multiply safely *)

let one = S 1
let minus_one = S (-1)

let sign = function
  | S n -> compare n 0
  | B b -> b.sign

let is_zero = function S 0 -> true | _ -> false

let neg = function
  | S n when n <> Stdlib.min_int -> S (-n)
  | S n -> make 1 (mag_of_int n) (* -min_int overflows natively *)
  | B b -> B { b with sign = -b.sign }

let abs x = if sign x < 0 then neg x else x

let compare a b =
  match (a, b) with
  | S x, S y -> Stdlib.compare x y
  | _ ->
      let a = to_big a and b = to_big b in
      if a.sign <> b.sign then Stdlib.compare a.sign b.sign
      else if a.sign >= 0 then cmp_mag a.mag b.mag
      else cmp_mag b.mag a.mag

let equal a b = compare a b = 0

let hash = function
  | S n -> n land max_int
  | B b -> (
      (* the only B value equal to some S value is min_int (its magnitude
         is exactly 2^62); hash it like its S twin so equal values hash
         equally *)
      match small_of_mag b.sign b.mag with
      | Some n -> n land max_int
      | None ->
          if
            b.sign < 0
            && Array.length b.mag = 3
            && b.mag.(2) = 4 && b.mag.(1) = 0 && b.mag.(0) = 0
          then Stdlib.min_int land max_int
          else
            Array.fold_left
              (fun h d -> (h * 1000003) lxor d)
              (b.sign + 2) b.mag)

let big_add a b =
  if a.sign = 0 then make b.sign b.mag
  else if b.sign = 0 then make a.sign a.mag
  else if a.sign = b.sign then make a.sign (add_mag a.mag b.mag)
  else
    let c = cmp_mag a.mag b.mag in
    if c = 0 then zero
    else if c > 0 then make a.sign (sub_mag a.mag b.mag)
    else make b.sign (sub_mag b.mag a.mag)

(* guards must reject min_int explicitly: [Stdlib.abs min_int] is min_int
   itself (negative), so an abs-based bound would wrongly admit it *)
let small x = x > -small_limit && x < small_limit
let small_factor x = x > -mul_limit && x < mul_limit

let add a b =
  match (a, b) with
  | S x, S y when small x && small y -> S (x + y)
  | _ -> big_add (to_big a) (to_big b)

let sub a b =
  match (a, b) with
  | S x, S y when small x && small y -> S (x - y)
  | _ -> big_add (to_big a) (to_big (neg b))

let mul a b =
  match (a, b) with
  | S x, S y when small_factor x && small_factor y -> S (x * y)
  | _ ->
      let a = to_big a and b = to_big b in
      if a.sign = 0 || b.sign = 0 then zero
      else make (a.sign * b.sign) (mul_mag a.mag b.mag)

let divmod a b =
  match (a, b) with
  | _, S 0 -> raise Division_by_zero
  | S x, S y when x <> Stdlib.min_int || y <> -1 -> (S (x / y), S (x mod y))
  | _ ->
      let a = to_big a and b = to_big b in
      if b.sign = 0 then raise Division_by_zero;
      let q, r = divmod_mag a.mag b.mag in
      (make (a.sign * b.sign) q, make a.sign r)

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

let gcd a b =
  match (a, b) with
  | S x, S y when x > Stdlib.min_int && y > Stdlib.min_int ->
      let rec go a b = if b = 0 then a else go b (a mod b) in
      S (go (Stdlib.abs x) (Stdlib.abs y))
  | _ ->
      let rec go a b = if is_zero b then a else go b (rem a b) in
      go (abs a) (abs b)

let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

let to_int = function
  | S n -> Some n
  | B b -> (
      (* B values exceed 62 bits by construction except possibly min_int *)
      match small_of_mag b.sign b.mag with
      | Some n -> Some n
      | None ->
          if
            b.sign < 0
            && Array.length b.mag = 3
            && b.mag.(2) = 4 && b.mag.(1) = 0 && b.mag.(0) = 0
          then Some Stdlib.min_int
          else None)

let to_int_exn x =
  match to_int x with
  | Some n -> n
  | None -> failwith "Bigint.to_int_exn: value out of native int range"

let to_float = function
  | S n -> float_of_int n
  | B b ->
      let f = ref 0.0 in
      for i = Array.length b.mag - 1 downto 0 do
        f := (!f *. float_of_int base) +. float_of_int b.mag.(i)
      done;
      if b.sign < 0 then -. !f else !f

let chunk = 1_000_000_000 (* 10^9 < 2^30 *)

let to_string = function
  | S n -> string_of_int n
  | B b ->
      let buf = Buffer.create 32 in
      let rec go mag acc =
        if Array.length (normalize_mag mag) = 0 then acc
        else
          let q, r = divmod_small_mag mag chunk in
          go (normalize_mag q) (r :: acc)
      in
      (match go b.mag [] with
      | [] -> "0"
      | first :: rest ->
          if b.sign < 0 then Buffer.add_char buf '-';
          Buffer.add_string buf (string_of_int first);
          List.iter
            (fun c -> Buffer.add_string buf (Printf.sprintf "%09d" c))
            rest;
          Buffer.contents buf)

let of_string s =
  let n = String.length s in
  if n = 0 then invalid_arg "Bigint.of_string: empty string";
  let sgn, start =
    match s.[0] with
    | '-' -> (-1, 1)
    | '+' -> (1, 1)
    | _ -> (1, 0)
  in
  if start >= n then invalid_arg "Bigint.of_string: no digits";
  let acc = ref [||] in
  let i = ref start in
  while !i < n do
    let j = Stdlib.min n (!i + 9) in
    let width = j - !i in
    let v = ref 0 in
    for k = !i to j - 1 do
      match s.[k] with
      | '0' .. '9' -> v := (!v * 10) + (Char.code s.[k] - Char.code '0')
      | _ -> invalid_arg "Bigint.of_string: invalid character"
    done;
    let pow10 = int_of_float (10.0 ** float_of_int width) in
    acc := add_mag (mul_small_mag !acc pow10) [| !v |];
    i := j
  done;
  make sgn (normalize_mag !acc)

let pp fmt x = Format.pp_print_string fmt (to_string x)
let succ x = add x one
let pred x = sub x one
let ( + ) = add
let ( - ) = sub
let ( * ) = mul
let ( / ) = div
let ( < ) a b = compare a b < 0
let ( <= ) a b = compare a b <= 0
let ( > ) a b = compare a b > 0
let ( >= ) a b = compare a b >= 0
let ( = ) = equal
